"""Runtime fault injection: message-level and node-level injectors.

:class:`MessageFaultInjector` composes with *any* :class:`Network`
subclass (ethernet, switch — loader traffic included) by interposing on
the instance's ``_deliver``: every concrete link model funnels each
per-destination delivery through ``self._deliver``, so replacing that
bound attribute intercepts exactly one point per (frame, dst) without
subclassing per model.  Fault decisions are one uniform draw against
the plan's cumulative rates, from a stream derived *only* from
``plan.seed`` — same plan, same workload ⇒ bit-identical trace
(the chaos regression suite pins this with SHA-256 digests).

:class:`NodeFaultModel` applies pause/slowdown/crash windows to a
:class:`~repro.cluster.node.Node`'s compute costs via the node's
``fault_model`` hook; crash windows additionally flush the node's
egress adapter queue at crash onset (in-flight outbound frames lost).

Injected faults are recorded in a :class:`FaultLog` — a bounded,
digestible event list that is the chaos suite's trace artifact — and
counted in :class:`FaultStats`.  An optional ``observer`` (the race
classifier's ``on_fault`` hook) sees every event as it happens.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.faults.plan import FaultPlan, NodeFault
from repro.network.base import Network
from repro.network.frame import Frame
from repro.sim.kernel import Kernel
from repro.sim.rng import stream_seed


@dataclass(frozen=True)
class FaultEvent:
    """One injected fault, with enough identity to line up with traces."""

    time: float
    kind: str  # "drop" | "duplicate" | "delay" | "reorder" | "flush" | "crash-flush"
    src: int
    dst: int
    frame_kind: str
    frame_id: int
    #: kind-specific magnitude: delay seconds, frames lost at a crash, …
    amount: float = 0.0


@dataclass
class FaultStats:
    """Counters over every injected fault (never truncated)."""

    eligible: int = 0
    dropped: int = 0
    duplicated: int = 0
    delayed: int = 0
    reordered: int = 0
    flush_releases: int = 0
    crash_frames_lost: int = 0

    @property
    def injected(self) -> int:
        """Total injected message faults across all kinds."""
        return self.dropped + self.duplicated + self.delayed + self.reordered

    def as_dict(self) -> dict:
        """Per-kind fault counts as a plain dict."""
        return {
            "eligible": self.eligible,
            "dropped": self.dropped,
            "duplicated": self.duplicated,
            "delayed": self.delayed,
            "reordered": self.reordered,
            "flush_releases": self.flush_releases,
            "crash_frames_lost": self.crash_frames_lost,
        }


class FaultLog:
    """Bounded append-only record of injected faults (the trace artifact)."""

    def __init__(self, max_events: int = 100_000) -> None:
        self.events: list[FaultEvent] = []
        self.max_events = max_events
        self.dropped_records = 0

    def add(self, event: FaultEvent) -> None:
        """Append ``event``, dropping the oldest entries beyond the bound."""
        if len(self.events) >= self.max_events:
            self.dropped_records += 1
            return
        self.events.append(event)

    def rows(self) -> list[dict]:
        """The retained fault events as JSON-friendly dicts."""
        return [
            {
                "time": e.time, "kind": e.kind, "src": e.src, "dst": e.dst,
                "frame_kind": e.frame_kind, "frame_id": e.frame_id, "amount": e.amount,
            }
            for e in self.events
        ]

    def digest_fields(self) -> list:
        """Flat field list for repro.bench.determinism.digest_values."""
        out: list = []
        for e in self.events:
            out.extend((e.time, e.kind, e.src, e.dst, e.frame_kind, e.amount))
        out.append(self.dropped_records)
        return out

    def __len__(self) -> int:
        return len(self.events)


class MessageFaultInjector:
    """Seed-driven drop/duplicate/delay/reorder at frame delivery time.

    Exactly one fault decision is made per original (frame, destination)
    delivery; synthetic deliveries the injector itself schedules
    (duplicate copies, delayed frames, released holds) bypass the dice so
    fault cascades stay bounded and the event count stays linear in the
    traffic.
    """

    def __init__(self, kernel: Kernel, network: Network, plan: FaultPlan) -> None:
        self.kernel = kernel
        self.network = network
        self.plan = plan
        self.stats = FaultStats()
        self.log = FaultLog()
        #: optional hook: ``on_fault(kind, frame, time)`` (race classifier)
        self.observer = None
        self._rng = np.random.default_rng(stream_seed(plan.seed, "faults.messages"))
        #: per destination: frames held for reordering
        self._held: dict[int, list[Frame]] = {}
        self._orig_deliver = network._deliver
        network._deliver = self._on_deliver  # type: ignore[method-assign]
        #: discoverable from the network (attach_race_classifier uses this)
        network.fault_injector = self  # type: ignore[attr-defined]

    # ------------------------------------------------------------------
    def _eligible(self, frame: Frame) -> bool:
        m = self.plan.messages
        if m.kinds and frame.kind not in m.kinds:
            return False
        if m.protect_tags and frame.kind == "pvm":
            payload = frame.payload
            # PVM frames carry (msg_id, frag_idx, n_frags, Message)
            if isinstance(payload, tuple) and len(payload) == 4:
                tag = getattr(payload[3], "tag", None)
                if tag in m.protect_tags:
                    return False
        return True

    def _record(self, kind: str, frame: Frame, dst: int, amount: float = 0.0) -> None:
        now = self.kernel.now
        self.log.add(FaultEvent(
            time=now, kind=kind, src=frame.src, dst=dst,
            frame_kind=frame.kind, frame_id=frame.frame_id, amount=amount,
        ))
        if self.kernel.obs is not None:
            self.kernel.obs.emit(
                f"fault.{kind}", node=dst, src=frame.src,
                frame_kind=frame.kind, amount=amount,
            )
        if self.observer is not None:
            self.observer.on_fault(kind, frame, now)

    # ------------------------------------------------------------------
    def _on_deliver(self, frame: Frame, dst: int) -> None:
        m = self.plan.messages
        if not m.any_rate or not m.active(self.kernel.now) or not self._eligible(frame):
            self._deliver_and_release(frame, dst)
            return
        self.stats.eligible += 1
        u = float(self._rng.random())
        edge = m.drop
        if u < edge:
            self.stats.dropped += 1
            self._record("drop", frame, dst)
            return
        edge += m.duplicate
        if u < edge:
            self.stats.duplicated += 1
            self._record("duplicate", frame, dst)
            self._deliver_and_release(frame, dst)
            self.kernel.schedule(m.dup_delay_s, self._deliver_direct, frame, dst)
            return
        edge += m.delay
        if u < edge:
            lo, hi = m.delay_s
            extra = float(self._rng.uniform(lo, hi))
            self.stats.delayed += 1
            self._record("delay", frame, dst, amount=extra)
            self.kernel.schedule(extra, self._deliver_direct, frame, dst)
            return
        edge += m.reorder
        if u < edge:
            self.stats.reordered += 1
            self._record("reorder", frame, dst)
            self._held.setdefault(dst, []).append(frame)
            self.kernel.schedule(m.reorder_hold_s, self._flush_held, frame, dst)
            return
        self._deliver_and_release(frame, dst)

    # -- synthetic deliveries (no re-roll) ------------------------------
    def _deliver_direct(self, frame: Frame, dst: int) -> None:
        self._orig_deliver(frame, dst)

    def _deliver_and_release(self, frame: Frame, dst: int) -> None:
        """Deliver ``frame`` and then any frames held for reordering.

        The held frames were enqueued *before* this one, so delivering
        them after it is precisely the overtake the fault models.
        """
        self._orig_deliver(frame, dst)
        held = self._held.get(dst)
        if held:
            self._held[dst] = []
            for h in held:
                self._orig_deliver(h, dst)

    def _flush_held(self, frame: Frame, dst: int) -> None:
        """Safety valve: a held frame no later frame overtook is released."""
        held = self._held.get(dst)
        if held and frame in held:
            held.remove(frame)
            self.stats.flush_releases += 1
            self._record("flush", frame, dst)
            self._orig_deliver(frame, dst)

    def pending_held(self) -> int:
        """Frames currently held back by an active reorder window."""
        return sum(len(v) for v in self._held.values())


class NodeFaultModel:
    """Pause/slowdown/crash windows for one node's compute stream.

    Installed on ``Node.fault_model``; :meth:`perturb` maps a compute
    interval ``[now, now + seconds)`` to its faulted completion time.
    Pause and crash windows are dead time (completion slips past the
    window's end); slowdown windows stretch the overlapping portion by
    ``factor``.  The mapping is a deterministic pure function of
    ``(now, seconds)`` — no randomness, so node faults never perturb
    RNG streams.
    """

    def __init__(self, faults: tuple[NodeFault, ...]) -> None:
        self.faults = tuple(sorted(faults, key=lambda f: f.start))
        self.stall_time = 0.0
        self.stretch_time = 0.0

    def perturb(self, now: float, seconds: float) -> float:
        """Faulted duration for baseline work of ``seconds`` starting now."""
        finish = now + seconds
        for f in self.faults:
            if f.kind in ("pause", "crash"):
                # windows are start-sorted and `finish` only grows, so a
                # single pass accumulates cascading stalls correctly
                if finish > f.start and now < f.end:
                    stall = f.end - max(now, f.start)
                    finish += stall
                    self.stall_time += stall
            else:  # slowdown: stretch the overlapped portion
                overlap = min(finish, f.end) - max(now, f.start)
                if overlap > 0:
                    stretch = overlap * (f.factor - 1.0)
                    finish += stretch
                    self.stretch_time += stretch
        return finish - now


class FaultInjector:
    """Everything one machine needs: message + node injectors, one plan."""

    def __init__(
        self,
        kernel: Kernel,
        network: Network,
        nodes: list,
        plan: FaultPlan,
    ) -> None:
        self.plan = plan
        self.kernel = kernel
        self.network = network
        self.messages = MessageFaultInjector(kernel, network, plan)
        self.node_models: dict[int, NodeFaultModel] = {}
        self.stats = self.messages.stats
        self.log = self.messages.log
        for node in nodes:
            faults = plan.faults_for_node(node.node_id)
            if not faults:
                continue
            model = NodeFaultModel(faults)
            node.fault_model = model
            self.node_models[node.node_id] = model
            for f in faults:
                if f.kind == "crash":
                    kernel.schedule_at(f.start, self._crash_flush, node.node_id)

    @property
    def observer(self):
        """The delivery-observer callable to register on the network."""
        return self.messages.observer

    @observer.setter
    def observer(self, value) -> None:
        self.messages.observer = value

    def _crash_flush(self, node_id: int) -> None:
        """Crash onset: the node's queued egress frames are lost."""
        adapter = self.network.adapters.get(node_id)
        if adapter is None or not adapter.queue:
            return
        lost = len(adapter.queue)
        self.messages.stats.crash_frames_lost += lost
        now = self.kernel.now
        self.messages.log.add(FaultEvent(
            time=now, kind="crash-flush", src=node_id, dst=-1,
            frame_kind="*", frame_id=-1, amount=float(lost),
        ))
        if self.kernel.obs is not None:
            self.kernel.obs.emit(
                "fault.crash-flush", node=node_id, amount=float(lost)
            )
        if self.messages.observer is not None:
            self.messages.observer.on_fault("crash-flush", None, now)
        # the network owns per-queue derived state (Ethernet's contender
        # backlog); flushing through it keeps that state consistent
        self.network.flush_queue(node_id)

    def summary(self) -> dict:
        """Injected-fault counts and log size, as a dict."""
        out = {"plan": self.plan.describe(), **self.stats.as_dict()}
        out["node_stall_time"] = sum(m.stall_time for m in self.node_models.values())
        out["node_stretch_time"] = sum(m.stretch_time for m in self.node_models.values())
        return out


def install_faults(kernel: Kernel, network: Network, nodes: list, plan: FaultPlan) -> FaultInjector:
    """Wire a plan into a built machine's kernel/network/nodes."""
    return FaultInjector(kernel, network, nodes, plan)
