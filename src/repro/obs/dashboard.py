"""Zero-dependency single-file HTML run dashboard.

``python -m repro.obs dashboard trace.jsonl`` renders one trace (plus
an optional metrics snapshot) as a self-contained HTML page — inline
SVG, inline CSS, no JavaScript, no external assets — written next to
the text report so a run can be inspected in a browser straight from a
CI artifact.

Sections: stat tiles (completion time, events, blocked time, warp,
rollbacks), the per-node timeline (each node's window partitioned into
compute / Global_Read-blocking / network / rollback, with the critical
path overlaid as outlined intervals), the critical-path composition
bar, warp-over-time, the staleness histogram, and the per-node
attribution table (the accessible twin of the timeline).

Chart conventions follow the repo's data-viz method: categorical hues
assigned in fixed slot order (compute blue, gr-blocking orange,
network aqua, rollback yellow — a validated adjacent-pair ordering in
both light and dark mode), text always in ink tokens (never series
colors), hairline gridlines, one axis per chart, a legend for
multi-series marks, and dark mode as selected palette steps behind
``prefers-color-scheme`` rather than an automatic inversion.
"""

from __future__ import annotations

import math
from html import escape
from typing import Iterable

from repro.obs.bus import ObsEvent
from repro.obs.causal import (
    SpanGraph,
    attribute,
    build_spans,
    critical_path,
    node_segments,
)
from repro.obs.report import fabric_summary, parallel_summary, warp_streams

#: display order, labels and CSS classes of the attribution buckets
_BUCKET_ORDER = ("compute", "gr_blocking", "network", "rollback")
_BUCKET_LABEL = {
    "compute": "compute",
    "gr_blocking": "Global_Read blocking",
    "network": "network / messaging",
    "rollback": "rollback",
}
_BUCKET_PRI = {"gr_blocking": 3, "rollback": 2, "compute": 1, "network": 0}

# timeline geometry (px)
_W = 960
_GUTTER = 64
_PLOT_W = _W - _GUTTER - 12
_ROW_H = 26
_BAR_H = 16


def _fmt(v: float) -> str:
    return f"{v:.4g}"


def _esc(s: object) -> str:
    return escape(str(s), quote=True)


def _ticks(hi: float, n: int = 6) -> list[float]:
    """Round-numbered axis ticks covering [0, hi]."""
    if hi <= 0:
        return [0.0]
    raw = hi / n
    mag = 10 ** math.floor(math.log10(raw))
    for mult in (1, 2, 2.5, 5, 10):
        if mag * mult >= raw:
            step = mag * mult
            break
    out = []
    t = 0.0
    while t <= hi + 1e-12:
        out.append(round(t, 10))
        t += step
    return out


def _dominant_columns(
    segments: list[tuple[float, float, str]], t_end: float
) -> list[tuple[int, int, str]]:
    """Collapse segments to per-pixel dominant buckets, run-length merged.

    Bounded output regardless of trace size: each pixel column shows
    the bucket holding the most time in it (ties to the rarer, higher-
    priority state so short blocking bursts stay visible).
    """
    if t_end <= 0 or not segments:
        return []
    cols: list[str | None] = [None] * _PLOT_W
    occupancy: list[dict[str, float]] = [{} for _ in range(_PLOT_W)]
    scale = _PLOT_W / t_end
    for t0, t1, bucket in segments:
        c0 = max(0, min(_PLOT_W - 1, int(t0 * scale)))
        c1 = max(0, min(_PLOT_W - 1, int(t1 * scale - 1e-9)))
        for c in range(c0, c1 + 1):
            lo = max(t0, c / scale)
            hi = min(t1, (c + 1) / scale)
            if hi > lo:
                occupancy[c][bucket] = occupancy[c].get(bucket, 0.0) + (hi - lo)
    for c, occ in enumerate(occupancy):
        if occ:
            cols[c] = max(occ, key=lambda b: (occ[b], _BUCKET_PRI[b]))
    runs: list[tuple[int, int, str]] = []
    for c, bucket in enumerate(cols):
        if bucket is None:
            continue
        if runs and runs[-1][2] == bucket and runs[-1][1] == c - 1:
            runs[-1] = (runs[-1][0], c, bucket)
        else:
            runs.append((c, c, bucket))
    return runs


def _timeline_svg(g: SpanGraph, cp: dict) -> str:
    """Per-node timeline with the critical path overlaid."""
    nodes = g.nodes
    t_end = g.t_end
    if not nodes or t_end <= 0:
        return "<p class='empty'>No node activity in trace.</p>"
    h = len(nodes) * _ROW_H + 34
    parts = [
        f"<svg viewBox='0 0 {_W} {h}' role='img' "
        f"aria-label='Per-node activity timeline'>"
    ]
    for tick in _ticks(t_end):
        x = _GUTTER + tick / t_end * _PLOT_W
        if x > _W - 10:
            continue
        parts.append(
            f"<line class='grid' x1='{x:.1f}' y1='4' x2='{x:.1f}' "
            f"y2='{h - 30}'/>"
            f"<text class='tick' x='{x:.1f}' y='{h - 16}' "
            f"text-anchor='middle'>{_fmt(tick)}s</text>"
        )
    for i, node in enumerate(nodes):
        y = i * _ROW_H + 6
        parts.append(
            f"<text class='label' x='{_GUTTER - 8}' y='{y + _BAR_H - 4}' "
            f"text-anchor='end'>node {node}</text>"
        )
        segs = node_segments(
            g.node_window[node], [s for s in g.spans if s.node == node]
        )
        for c0, c1, bucket in _dominant_columns(segs, t_end):
            x0 = _GUTTER + c0
            w = c1 - c0 + 1
            lo = c0 / _PLOT_W * t_end
            hi = (c1 + 1) / _PLOT_W * t_end
            parts.append(
                f"<rect class='seg c-{bucket}' x='{x0}' y='{y}' "
                f"width='{w}' height='{_BAR_H}'>"
                f"<title>node {node} · {_esc(_BUCKET_LABEL[bucket])} · "
                f"{_fmt(lo)}–{_fmt(hi)}s</title></rect>"
            )
    # critical-path overlay: contiguous same-node stretches, outlined
    merged: list[tuple[int, float, float]] = []
    for seg in cp.get("segments", []):
        if merged and merged[-1][0] == seg["node"] and abs(merged[-1][2] - seg["t0"]) < 1e-9:
            merged[-1] = (merged[-1][0], merged[-1][1], seg["t1"])
        else:
            merged.append((seg["node"], seg["t0"], seg["t1"]))
    index = {n: i for i, n in enumerate(nodes)}
    for node, t0, t1 in merged:
        if node not in index:
            continue
        y = index[node] * _ROW_H + 6
        x0 = _GUTTER + t0 / t_end * _PLOT_W
        w = max(1.0, (t1 - t0) / t_end * _PLOT_W)
        parts.append(
            f"<rect class='cp' x='{x0:.1f}' y='{y - 2}' width='{w:.1f}' "
            f"height='{_BAR_H + 4}'>"
            f"<title>critical path · node {node} · {_fmt(t0)}–{_fmt(t1)}s"
            f"</title></rect>"
        )
    parts.append("</svg>")
    return "".join(parts)


def _legend() -> str:
    items = "".join(
        f"<span class='key'><span class='swatch c-{b}'></span>"
        f"{_esc(_BUCKET_LABEL[b])}</span>"
        for b in _BUCKET_ORDER
    )
    items += (
        "<span class='key'><span class='swatch cp-swatch'></span>"
        "critical path</span>"
    )
    return f"<div class='legend'>{items}</div>"


def _cp_bar(cp: dict) -> str:
    """Critical-path composition as one stacked horizontal bar."""
    by_kind = cp.get("by_kind", {})
    total = sum(by_kind.values())
    if total <= 0:
        return "<p class='empty'>No critical path (empty trace).</p>"
    kind_css = {
        "compute": "compute", "gr-blocking": "gr_blocking",
        "network": "network", "rollback": "rollback",
    }
    order = [k for k in ("compute", "gr-blocking", "network", "rollback") if k in by_kind]
    h = 46
    parts = [f"<svg viewBox='0 0 {_W} {h}' role='img' aria-label='Critical path composition'>"]
    x = 0.0
    for k in order:
        w = by_kind[k] / total * (_W - 4)
        if w <= 0:
            continue
        # 2px surface gap between stacked segments
        parts.append(
            f"<rect class='seg c-{kind_css[k]}' x='{x + 2:.1f}' y='8' "
            f"width='{max(0.5, w - 2):.1f}' height='22' rx='2'>"
            f"<title>{_esc(k)} · {_fmt(by_kind[k])}s "
            f"({by_kind[k] / total * 100:.1f}%)</title></rect>"
        )
        x += w
    parts.append("</svg>")
    text = "  ·  ".join(
        f"{k}: {_fmt(by_kind[k])}s ({by_kind[k] / total * 100:.1f}%)" for k in order
    )
    return "".join(parts) + f"<p class='sub'>{_esc(text)}</p>"


def _warp_svg(events: list[ObsEvent], t_end: float, bins: int = 120) -> str:
    """Warp over time: binned mean across all pvm streams, one line."""
    samples = sorted(
        (t, w) for series in warp_streams(events).values() for t, w in series
    )
    if not samples or t_end <= 0:
        return "<p class='empty'>No pvm deliveries in trace.</p>"
    sums = [0.0] * bins
    counts = [0] * bins
    for t, w in samples:
        b = min(bins - 1, int(t / t_end * bins))
        sums[b] += w
        counts[b] += 1
    pts = [
        (b, sums[b] / counts[b]) for b in range(bins) if counts[b] > 0
    ]
    y_max = max(1.2, max(v for _, v in pts) * 1.15)
    w_px, h_px, pad_l, pad_b = 460, 190, 40, 22
    plot_w, plot_h = w_px - pad_l - 8, h_px - pad_b - 8

    def xy(b: int, v: float) -> tuple[float, float]:
        return (
            pad_l + (b + 0.5) / bins * plot_w,
            8 + (1 - v / y_max) * plot_h,
        )

    parts = [f"<svg viewBox='0 0 {w_px} {h_px}' role='img' aria-label='Warp over time'>"]
    for tick in _ticks(y_max, 4):
        if tick > y_max:
            continue
        y = 8 + (1 - tick / y_max) * plot_h
        parts.append(
            f"<line class='grid' x1='{pad_l}' y1='{y:.1f}' x2='{w_px - 8}' y2='{y:.1f}'/>"
            f"<text class='tick' x='{pad_l - 6}' y='{y + 3:.1f}' text-anchor='end'>{_fmt(tick)}</text>"
        )
    y1 = 8 + (1 - 1.0 / y_max) * plot_h
    parts.append(
        f"<line class='ref' x1='{pad_l}' y1='{y1:.1f}' x2='{w_px - 8}' y2='{y1:.1f}'/>"
        f"<text class='tick' x='{w_px - 10}' y='{y1 - 4:.1f}' text-anchor='end'>stable (1.0)</text>"
    )
    path = " ".join(
        f"{'M' if i == 0 else 'L'}{xy(b, v)[0]:.1f},{xy(b, v)[1]:.1f}"
        for i, (b, v) in enumerate(pts)
    )
    parts.append(f"<path class='line c-compute-stroke' d='{path}'/>")
    parts.append(
        f"<line class='axis' x1='{pad_l}' y1='{8 + plot_h}' x2='{w_px - 8}' y2='{8 + plot_h}'/>"
        f"<text class='tick' x='{pad_l}' y='{h_px - 6}'>0s</text>"
        f"<text class='tick' x='{w_px - 8}' y='{h_px - 6}' text-anchor='end'>{_fmt(t_end)}s</text>"
    )
    parts.append("</svg>")
    return "".join(parts)


def _staleness_svg(events: list[ObsEvent]) -> str:
    """Histogram of Global_Read staleness (returned-copy age lag)."""
    counts: dict[int, int] = {}
    for e in events:
        if e.kind in ("gr.hit", "gr.unblock") and "staleness" in e.fields:
            s = int(e.fields["staleness"])
            counts[s] = counts.get(s, 0) + 1
    if not counts:
        return "<p class='empty'>No Global_Read events in trace.</p>"
    values = sorted(counts)
    n_max = max(counts.values())
    w_px, h_px, pad_l, pad_b = 460, 190, 40, 22
    plot_w, plot_h = w_px - pad_l - 8, h_px - pad_b - 8
    bar_w = min(24.0, plot_w / len(values) - 2)
    parts = [
        f"<svg viewBox='0 0 {w_px} {h_px}' role='img' "
        f"aria-label='Staleness histogram'>"
    ]
    for tick in _ticks(n_max, 4):
        if tick > n_max * 1.05 or tick != int(tick):
            continue
        y = 8 + (1 - tick / n_max) * plot_h
        parts.append(
            f"<line class='grid' x1='{pad_l}' y1='{y:.1f}' x2='{w_px - 8}' y2='{y:.1f}'/>"
            f"<text class='tick' x='{pad_l - 6}' y='{y + 3:.1f}' text-anchor='end'>{int(tick)}</text>"
        )
    for i, s in enumerate(values):
        x = pad_l + (i + 0.5) / len(values) * plot_w - bar_w / 2
        bh = counts[s] / n_max * plot_h
        parts.append(
            f"<rect class='seg c-compute' x='{x:.1f}' y='{8 + plot_h - bh:.1f}' "
            f"width='{bar_w:.1f}' height='{bh:.1f}' rx='2'>"
            f"<title>staleness {s} · {counts[s]} reads</title></rect>"
        )
        parts.append(
            f"<text class='tick' x='{x + bar_w / 2:.1f}' y='{h_px - 6}' "
            f"text-anchor='middle'>{s}</text>"
        )
    parts.append(
        f"<line class='axis' x1='{pad_l}' y1='{8 + plot_h}' x2='{w_px - 8}' y2='{8 + plot_h}'/>"
    )
    parts.append("</svg>")
    return "".join(parts)


def _attribution_table(attr: dict) -> str:
    rows = []
    for node, pn in attr["per_node"].items():
        rows.append(
            "<tr><td>node {n}</td><td>{c}</td><td>{g}</td><td>{net}</td>"
            "<td>{rb}</td><td>{idle}</td><td>{frac}</td></tr>".format(
                n=_esc(node),
                c=_fmt(pn["compute"]), g=_fmt(pn["gr_blocking"]),
                net=_fmt(pn["network"]), rb=_fmt(pn["rollback"]),
                idle=_fmt(pn["idle"]),
                frac=f"{pn['attributed_fraction'] * 100:.1f}%",
            )
        )
    t = attr["totals"]
    rows.append(
        "<tr class='total'><td>all</td><td>{c}</td><td>{g}</td><td>{net}</td>"
        "<td>{rb}</td><td>{idle}</td><td></td></tr>".format(
            c=_fmt(t["compute"]), g=_fmt(t["gr_blocking"]),
            net=_fmt(t["network"]), rb=_fmt(t["rollback"]), idle=_fmt(t["idle"]),
        )
    )
    return (
        "<table><thead><tr><th>node</th><th>compute (s)</th>"
        "<th>gr blocking (s)</th><th>network (s)</th><th>rollback (s)</th>"
        "<th>idle (s)</th><th>attributed</th></tr></thead><tbody>"
        + "".join(rows)
        + "</tbody></table>"
    )


def _parallel_table(events: list[ObsEvent]) -> str:
    """Bounded-lag window card: per-shard barrier-wait table, or ''."""
    s = parallel_summary(events)
    if s is None:
        return ""
    rows = "".join(
        "<tr><td>shard {s}</td><td>{w}</td><td>{e}</td><td>{n}</td>"
        "<td>{t}</td></tr>".format(
            s=_esc(shard), w=int(r["windows"]), e=int(r["max_epoch"]),
            n=int(r["waits"]), t=_fmt(r["wall_wait_s"]),
        )
        for shard, r in s["per_shard"].items()
    )
    return (
        "<section class='card'><h2>Parallel kernel — bounded-lag windows"
        "</h2><p class='sub'>"
        f"{s['shards']} shards · {_fmt(s['total_wall_wait_s'])}s total "
        "barrier wait</p><table><thead><tr><th>shard</th><th>windows</th>"
        "<th>last epoch</th><th>waits</th><th>wall wait (s)</th></tr>"
        f"</thead><tbody>{rows}</tbody></table></section>"
    )


def _fabric_table(events: list[ObsEvent]) -> str:
    """Switched-fabric delivery card (hops, broadcast, occupancy), or ''."""
    s = fabric_summary(events)
    if s is None:
        return ""
    rows = "".join(
        "<tr><td>{f}</td><td>{d}</td><td>{b}</td><td>{by}</td><td>{mh}</td>"
        "<td>{xh}</td><td>{occ}</td></tr>".format(
            f=_esc(name), d=int(r["deliveries"]), b=int(r["broadcast"]),
            by=int(r["bytes"]), mh=_fmt(r["mean_hops"]),
            xh=int(r["max_hops"]), occ=_fmt(r["links_per_sim_s"]),
        )
        for name, r in s.items()
    )
    return (
        "<section class='card'><h2>Switched fabric deliveries</h2>"
        "<table><thead><tr><th>fabric</th><th>deliveries</th><th>bcast</th>"
        "<th>bytes</th><th>mean hops</th><th>max hops</th>"
        "<th>link occupancy (hops/sim-s)</th></tr></thead>"
        f"<tbody>{rows}</tbody></table></section>"
    )


def _profile_card(prof: dict | None) -> str:
    """Host-time flame card from a ``repro-obs-prof/1`` envelope, or ''."""
    if prof is None:
        return ""
    from repro.obs.prof import profile_html

    return (
        "<section class='card'><h2>Host-time profile</h2>"
        + profile_html(prof)
        + "</section>"
    )


_CSS = """
.viz-root {
  color-scheme: light;
  --surface-1: #fcfcfb; --page: #f9f9f7;
  --text-primary: #0b0b0b; --text-secondary: #52514e; --muted: #898781;
  --grid: #e1e0d9; --baseline: #c3c2b7;
  --border: rgba(11,11,11,0.10);
  --s-compute: #2a78d6; --s-gr: #eb6834; --s-net: #1baf7a; --s-rb: #eda100;
}
@media (prefers-color-scheme: dark) {
  :root:where(:not([data-theme="light"])) .viz-root {
    color-scheme: dark;
    --surface-1: #1a1a19; --page: #0d0d0d;
    --text-primary: #ffffff; --text-secondary: #c3c2b7; --muted: #898781;
    --grid: #2c2c2a; --baseline: #383835;
    --border: rgba(255,255,255,0.10);
    --s-compute: #3987e5; --s-gr: #d95926; --s-net: #199e70; --s-rb: #c98500;
  }
}
:root[data-theme="dark"] .viz-root {
  color-scheme: dark;
  --surface-1: #1a1a19; --page: #0d0d0d;
  --text-primary: #ffffff; --text-secondary: #c3c2b7; --muted: #898781;
  --grid: #2c2c2a; --baseline: #383835;
  --border: rgba(255,255,255,0.10);
  --s-compute: #3987e5; --s-gr: #d95926; --s-net: #199e70; --s-rb: #c98500;
}
.viz-root {
  background: var(--page); color: var(--text-primary);
  font-family: system-ui, -apple-system, "Segoe UI", sans-serif;
  margin: 0; padding: 24px; font-size: 14px;
}
.wrap { max-width: 1060px; margin: 0 auto; }
h1 { font-size: 20px; margin: 0 0 4px; }
h2 { font-size: 15px; margin: 0 0 10px; color: var(--text-primary); }
.sub { color: var(--text-secondary); margin: 2px 0 0; font-size: 13px; }
.card {
  background: var(--surface-1); border: 1px solid var(--border);
  border-radius: 8px; padding: 16px; margin-top: 16px;
}
.tiles { display: flex; flex-wrap: wrap; gap: 12px; margin-top: 16px; }
.tile {
  background: var(--surface-1); border: 1px solid var(--border);
  border-radius: 8px; padding: 12px 16px; min-width: 130px; flex: 1;
}
.tile .v { font-size: 24px; font-weight: 600; }
.tile .k { color: var(--text-secondary); font-size: 12px; margin-top: 2px; }
svg { width: 100%; height: auto; display: block; }
.grid { stroke: var(--grid); stroke-width: 1; }
.axis { stroke: var(--baseline); stroke-width: 1; }
.ref { stroke: var(--baseline); stroke-width: 1; stroke-dasharray: 4 3; }
.tick, .label { fill: var(--muted); font-size: 10px;
  font-family: system-ui, -apple-system, "Segoe UI", sans-serif; }
.label { fill: var(--text-secondary); font-size: 11px; }
.seg:hover { opacity: 0.82; }
.c-compute { fill: var(--s-compute); }
.c-gr_blocking { fill: var(--s-gr); }
.c-network { fill: var(--s-net); }
.c-rollback { fill: var(--s-rb); }
.c-compute-stroke { stroke: var(--s-compute); stroke-width: 2;
  fill: none; stroke-linejoin: round; }
.cp { fill: none; stroke: var(--text-primary); stroke-width: 1.25; }
.cp-swatch { background: transparent !important;
  border: 1.5px solid var(--text-primary); }
.legend { display: flex; flex-wrap: wrap; gap: 14px; margin-top: 10px; }
.key { color: var(--text-secondary); font-size: 12px;
  display: inline-flex; align-items: center; gap: 6px; }
.swatch { width: 12px; height: 12px; border-radius: 3px;
  display: inline-block; }
.swatch.c-compute { background: var(--s-compute); }
.swatch.c-gr_blocking { background: var(--s-gr); }
.swatch.c-network { background: var(--s-net); }
.swatch.c-rollback { background: var(--s-rb); }
.two-col { display: grid; grid-template-columns: 1fr 1fr; gap: 20px; }
@media (max-width: 800px) { .two-col { grid-template-columns: 1fr; } }
table { border-collapse: collapse; width: 100%; font-size: 13px; }
th { text-align: left; color: var(--text-secondary); font-weight: 500;
  border-bottom: 1px solid var(--baseline); padding: 4px 10px 4px 0; }
td { padding: 4px 10px 4px 0; border-bottom: 1px solid var(--grid);
  font-variant-numeric: tabular-nums; }
tr.total td { border-bottom: none; font-weight: 600; }
.empty { color: var(--muted); }
footer { color: var(--muted); font-size: 12px; margin-top: 18px; }
.profrow { position: relative; height: 18px; margin: 2px 0; }
.profbar { position: absolute; left: 0; top: 0; bottom: 0;
  background: var(--s-compute); opacity: 0.35; border-radius: 3px; }
.proflbl { position: relative; font-size: 12px; line-height: 18px;
  color: var(--text-secondary); padding-left: 4px;
  font-variant-numeric: tabular-nums; }
"""


def render_dashboard(
    events: Iterable[ObsEvent],
    metrics: dict | None = None,
    title: str = "repro run dashboard",
    prof: dict | None = None,
) -> str:
    """Render one trace as a self-contained HTML page (a string).

    ``prof`` is an optional ``repro-obs-prof/1`` envelope rendered as a
    host-time flame card; parallel-kernel window and switched-fabric
    cards appear automatically when the trace carries those events.
    """
    events = sorted(events, key=lambda e: e.time)
    g = build_spans(events)
    attr = attribute(g)
    cp = critical_path(g)
    totals = attr["totals"]
    rb_count = sum(1 for e in events if e.kind == "rb.begin")
    warp_all = [w for series in warp_streams(events).values() for _, w in series]
    warp_mean = sum(warp_all) / len(warp_all) if warp_all else 0.0
    tiles = [
        (f"{_fmt(g.t_end)}s", "completion time"),
        (f"{g.events:,}", "trace events"),
        (f"{_fmt(totals['gr_blocking'])}s", "Global_Read blocking"),
        (f"{_fmt(warp_mean)}", "mean warp"),
        (f"{rb_count:,}", "rollbacks"),
    ]
    tiles_html = "".join(
        f"<div class='tile'><div class='v'>{_esc(v)}</div>"
        f"<div class='k'>{_esc(k)}</div></div>"
        for v, k in tiles
    )
    frac = attr["min_attributed_fraction"]
    subtitle = (
        f"{g.events:,} events · {len(g.spans):,} spans · "
        f"{frac * 100:.1f}% of wall time attributed (worst node)"
    )
    if g.partial:
        subtitle += " · partial trace (events dropped)"
    if metrics is not None:
        counters = metrics.get("counters", {})
        if counters:
            subtitle += f" · {len(counters)} metric counters"
    body = f"""
<div class='wrap'>
<header><h1>{_esc(title)}</h1><p class='sub'>{_esc(subtitle)}</p></header>
<section class='tiles'>{tiles_html}</section>
<section class='card'><h2>Per-node timeline</h2>
{_timeline_svg(g, cp)}{_legend()}</section>
<section class='card'><h2>Critical-path composition</h2>
{_cp_bar(cp)}</section>
<section class='card two-col'>
<div><h2>Warp over time (all pvm streams, binned mean)</h2>
{_warp_svg(events, g.t_end)}</div>
<div><h2>Global_Read staleness histogram</h2>
{_staleness_svg(events)}</div>
</section>
{_parallel_table(events)}{_fabric_table(events)}<section class='card'><h2>Wall-time attribution per node</h2>
{_attribution_table(attr)}</section>
{_profile_card(prof)}
<footer>rendered by repro.obs dashboard · trace schema
 docs/observability.md · critical path repro-obs-critical-path/1</footer>
</div>
"""
    return (
        "<!DOCTYPE html><html lang='en'><head><meta charset='utf-8'>"
        f"<meta name='viewport' content='width=device-width, initial-scale=1'>"
        f"<title>{_esc(title)}</title><style>{_CSS}</style></head>"
        f"<body class='viz-root'>{body}</body></html>"
    )
