"""The structured trace bus: typed run events with a JSONL writer.

A :class:`TraceBus` collects :class:`ObsEvent` records — *what happened,
when, on which node* — from every instrumented subsystem.  The design
constraints, in priority order:

1. **Determinism neutrality.**  Emitting an event must never touch an
   RNG stream, the event queue or any simulated state; the bus only
   appends to a Python list.  With tracing off there is no bus at all
   (``kernel.obs is None``) and every hook is a single attribute check,
   so the golden digests in :mod:`repro.bench.determinism` and
   :mod:`repro.faults.chaos` are byte-identical either way — and a test
   pins that they are identical with tracing *on* too.
2. **Zero dependencies.**  Plain dataclass records, stdlib ``json``.
3. **Bounded memory.**  Buffered mode keeps at most ``max_events``
   records and counts the overflow in :attr:`dropped`, mirroring
   :class:`repro.faults.injectors.FaultLog`; sink mode
   (:class:`GzipJsonlSink`) streams compressed JSONL to disk every
   ``flush_every`` events instead, so arbitrarily long runs trace with
   O(``flush_every``) peak memory and zero drops.

Event taxonomy (field details in ``docs/observability.md``):

=============  ========================================================
``proc.*``     process lifecycle: ``spawn``, ``block``, ``wake``,
               ``done``, ``fail`` (from :mod:`repro.sim.kernel`)
``net.deliver``  one frame handed to its destination adapter (carries
               enqueue time, so warp is recomputable from the trace)
``node.compute``  one charged compute interval on a node
``dsm.write``  a producer published an iteration of a shared location
``gr.hit``     ``Global_Read`` satisfied from the local age buffer
``gr.block``   ``Global_Read`` parked its caller (bound not met)
``gr.unblock`` the parked reader resumed; carries the waited seconds
``rb.begin`` / ``rb.end``  one Time-Warp rollback, with cascade depth
``bn.commit``  runs committed below the GVT floor
``gvt.advance``  the central GVT floor moved forward
``fault.*``    injected faults (``drop``, ``duplicate``, ``delay``,
               ``reorder``, ``flush``, ``crash-flush``)
=============  ========================================================

The ``time`` stamp comes from a *clock callable* handed in at
construction (``lambda: kernel.now``), so components without a kernel
reference (:class:`repro.bayes.rollback.ProcessorState`) can still emit.
"""

from __future__ import annotations

import gzip
import json
import os
from dataclasses import dataclass, field
from hashlib import sha256
from typing import Any, Callable, Iterator

from repro.obs.prof import prof_section


@dataclass(frozen=True)
class ObsEvent:
    """One structured trace record.

    ``node`` is the application-node id the event concerns (-1 when the
    event is not tied to one, e.g. kernel process bookkeeping); ``fields``
    carries the kind-specific payload with JSON-scalar values only.
    """

    time: float
    kind: str
    node: int = -1
    fields: dict = field(default_factory=dict)

    def as_dict(self) -> dict:
        """Flat JSON-ready mapping (``t``/``kind``/``node`` + payload)."""
        out = {"t": self.time, "kind": self.kind, "node": self.node}
        out.update(self.fields)
        return out


class GzipJsonlSink:
    """Rotating gzip JSONL writer: the bounded-memory backing of a bus.

    One sink owns a base path (``trace.jsonl.gz``); once the compressed
    bytes of the current part pass ``rotate_bytes`` the part is closed
    and writing continues in ``trace.part001.jsonl.gz``, ``part002`` …
    so a single artifact never grows unboundedly and a partial run
    leaves complete, readable parts behind.  ``level=1`` favours write
    throughput — trace lines are highly repetitive, so even the fastest
    setting compresses them ~10×.
    """

    def __init__(
        self,
        path: str,
        rotate_bytes: int = 8_000_000,
        level: int = 1,
    ) -> None:
        self.base_path = os.fspath(path)
        self.rotate_bytes = rotate_bytes
        self.level = level
        #: every part written, in order (base path first)
        self.paths: list[str] = []
        self._raw = None
        self._gz = None
        self._open_part(0)

    def _open_part(self, k: int) -> None:
        path = part_path(self.base_path, k)
        self.paths.append(path)
        self._raw = open(path, "wb")
        # filename="" keeps the member name out of the gzip header, so
        # identical content gives identical bytes wherever it's written
        self._gz = gzip.GzipFile(
            filename="", fileobj=self._raw, mode="wb",
            compresslevel=self.level, mtime=0,
        )

    def write_line(self, line: str) -> None:
        """Append one JSON line, rotating to a new part when full."""
        self._gz.write(line.encode("utf-8"))
        self._gz.write(b"\n")
        if self._raw.tell() >= self.rotate_bytes:
            self._close_part()
            self._open_part(len(self.paths))

    def _close_part(self) -> None:
        if self._gz is not None:
            self._gz.close()
            self._raw.close()
            self._gz = self._raw = None

    def close(self) -> None:
        """Flush and close the current part (idempotent)."""
        self._close_part()


def part_path(path: str, k: int) -> str:
    """Path of rotation part ``k`` of a gzip trace (part 0 is ``path``)."""
    path = os.fspath(path)
    if k == 0:
        return path
    if path.endswith(".jsonl.gz"):
        return f"{path[:-len('.jsonl.gz')]}.part{k:03d}.jsonl.gz"
    return f"{path}.part{k:03d}"


class TraceBus:
    """Append-only collector of :class:`ObsEvent` records.

    Two storage modes:

    * **buffered** (default): events stay in memory up to ``max_events``
      and overflow bumps :attr:`dropped` — cheap, simple, fine for
      paper-scale runs;
    * **sink** (``sink=GzipJsonlSink(...)``): every ``flush_every``
      events the buffer is serialised to the rotating gzip sink and
      cleared, so peak memory is O(``flush_every``) regardless of run
      length and nothing is ever dropped.  A running SHA-256 keeps
      :meth:`digest` identical to what buffered mode would report.
    """

    def __init__(
        self,
        clock: Callable[[], float],
        max_events: int = 500_000,
        sink: GzipJsonlSink | None = None,
        flush_every: int = 5_000,
    ) -> None:
        self.clock = clock
        self.max_events = max_events
        self.events: list[ObsEvent] = []
        #: events discarded after the buffer filled (never silently lost;
        #: always 0 in sink mode)
        self.dropped = 0
        self.sink = sink
        self.flush_every = flush_every
        #: total events emitted (== len(self.events) in buffered mode)
        self.emitted = 0
        #: high-water mark of the in-memory buffer at flush time (sink
        #: mode; the bounded-trace-memory evidence — never > flush_every)
        self.peak_buffered = 0
        self._hash = sha256()
        self._counts: dict[str, int] = {}
        self._last_t = 0.0
        self._finalized = False

    def emit(self, kind: str, node: int = -1, **fields: Any) -> None:
        """Record one event stamped with the current simulated time.

        Safe to call from any subsystem at any point in a run: the only
        side effects are a list append and, in sink mode, a periodic
        compressed flush.
        """
        if self.sink is None and len(self.events) >= self.max_events:
            self.dropped += 1
            return
        self.events.append(ObsEvent(self.clock(), kind, node, fields))
        if self.sink is not None and len(self.events) >= self.flush_every:
            self._flush()

    def _flush(self) -> None:
        """Serialise the in-memory buffer to the sink and clear it."""
        with prof_section("obs.io"):
            if len(self.events) > self.peak_buffered:
                self.peak_buffered = len(self.events)
            sink = self.sink
            for e in self.events:
                line = json.dumps(e.as_dict(), sort_keys=True)
                self._hash.update(line.encode())
                self._hash.update(b"\n")
                self._counts[e.kind] = self._counts.get(e.kind, 0) + 1
                sink.write_line(line)
                self._last_t = e.time
            self.emitted += len(self.events)
            self.events.clear()

    def __len__(self) -> int:
        return self.emitted + len(self.events) if self.sink else len(self.events)

    def kind_counts(self) -> dict[str, int]:
        """Event count per kind, sorted by kind name."""
        counts = dict(self._counts)
        for e in self.events:
            counts[e.kind] = counts.get(e.kind, 0) + 1
        return dict(sorted(counts.items()))

    # ------------------------------------------------------------------
    # Serialisation
    # ------------------------------------------------------------------
    def _meta_line(self, count: int) -> str:
        last_t = self.events[-1].time if self.events else self._last_t
        return json.dumps(
            {
                "t": last_t,
                "kind": "trace.meta",
                "node": -1,
                "events": count,
                "events_dropped": self.dropped,
            },
            sort_keys=True,
        )

    def write_jsonl(self, path: str | None = None) -> int:
        """Write one sorted-keys JSON object per line; returns the count.

        A trailer line (``kind = "trace.meta"``) records how many events
        the bounded buffer dropped, so a truncated trace is detectable.
        In sink mode the data already lives at the sink's path: the
        remaining buffer is flushed, the trailer appended, and the sink
        closed (``path`` is ignored; pass the sink's base path or None).
        """
        if self.sink is not None:
            meta = self._meta_line(self.emitted + len(self.events))
            self._flush()
            if not self._finalized:
                self.sink.write_line(meta)
                self.sink.close()
                self._finalized = True
            return self.emitted
        if path is None:
            raise ValueError("write_jsonl needs a path when the bus has no sink")
        with prof_section("obs.io"), open(path, "w", encoding="utf-8") as fh:
            for e in self.events:
                fh.write(json.dumps(e.as_dict(), sort_keys=True))
                fh.write("\n")
            fh.write(self._meta_line(len(self.events)))
            fh.write("\n")
        return len(self.events)

    def digest(self) -> str:
        """SHA-256 over the canonical JSON of every event.

        Two runs with identical seeds must produce identical digests —
        ``tests/obs`` pins this — and sink mode must report the same
        digest buffered mode would (the running hash covers flushed
        events, the loop below the still-buffered tail).
        """
        h = self._hash.copy()
        for e in self.events:
            h.update(json.dumps(e.as_dict(), sort_keys=True).encode())
            h.update(b"\n")
        return h.hexdigest()


def trace_paths(path: str) -> list[str]:
    """All on-disk parts of a trace, in write order.

    A plain file is itself; a rotated gzip trace is the base path plus
    every consecutive ``partNNN`` sibling; a directory is its sorted
    ``*.jsonl`` / ``*.jsonl.gz`` members.
    """
    path = os.fspath(path)
    if os.path.isdir(path):
        return [
            os.path.join(path, name)
            for name in sorted(os.listdir(path))
            if name.endswith(".jsonl") or name.endswith(".jsonl.gz")
        ]
    paths = [path]
    k = 1
    while os.path.exists(part_path(path, k)):
        paths.append(part_path(path, k))
        k += 1
    return paths


def iter_trace_lines(path: str) -> Iterator[str]:
    """Yield the text lines of a (possibly rotated, gzipped) trace.

    Tolerates a truncated final gzip member — a crashed run's tail is
    lost, not the whole artifact; :func:`repro.obs.causal.build_spans`
    already marks the cut-off spans partial.
    """
    for part in trace_paths(path):
        if part.endswith(".gz"):
            fh = gzip.open(part, "rt", encoding="utf-8")
        else:
            fh = open(part, "r", encoding="utf-8")
        try:
            yield from fh
        except EOFError:
            return
        finally:
            fh.close()


def read_meta(path: str) -> dict | None:
    """The ``trace.meta`` trailer of a trace on disk, or None.

    Scans the last part only — the trailer is always the final line a
    finalized bus writes; a truncated trace reports None.
    """
    last = None
    for line in iter_trace_lines(path):
        line = line.strip()
        if line:
            last = line
    if last is None:
        return None
    try:
        obj = json.loads(last)
    except json.JSONDecodeError:
        return None
    return obj if isinstance(obj, dict) and obj.get("kind") == "trace.meta" else None


def read_jsonl(path: str) -> Iterator[ObsEvent]:
    """Yield the :class:`ObsEvent` records of a trace.

    ``path`` may be a plain JSONL file, the base path of a (possibly
    rotated) gzip trace, or a directory of parts.  The ``trace.meta``
    trailer (and blank lines) are skipped; payload keys other than
    ``t``/``kind``/``node`` become the event's fields.  A line that no
    longer parses ends the stream — a crashed writer's torn final line
    loses the tail, not the artifact (``validate`` reports the damage).
    """
    for line in iter_trace_lines(path):
        line = line.strip()
        if not line:
            continue
        try:
            raw = json.loads(line)
        except json.JSONDecodeError:
            return
        kind = raw.pop("kind")
        if kind == "trace.meta":
            continue
        time = raw.pop("t")
        node = raw.pop("node", -1)
        yield ObsEvent(time=time, kind=kind, node=node, fields=raw)
