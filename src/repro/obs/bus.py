"""The structured trace bus: typed run events with a JSONL writer.

A :class:`TraceBus` collects :class:`ObsEvent` records — *what happened,
when, on which node* — from every instrumented subsystem.  The design
constraints, in priority order:

1. **Determinism neutrality.**  Emitting an event must never touch an
   RNG stream, the event queue or any simulated state; the bus only
   appends to a Python list.  With tracing off there is no bus at all
   (``kernel.obs is None``) and every hook is a single attribute check,
   so the golden digests in :mod:`repro.bench.determinism` and
   :mod:`repro.faults.chaos` are byte-identical either way — and a test
   pins that they are identical with tracing *on* too.
2. **Zero dependencies.**  Plain dataclass records, stdlib ``json``.
3. **Bounded memory.**  The bus keeps at most ``max_events`` records and
   counts the overflow in :attr:`dropped`, mirroring
   :class:`repro.faults.injectors.FaultLog`.

Event taxonomy (field details in ``docs/observability.md``):

=============  ========================================================
``proc.*``     process lifecycle: ``spawn``, ``block``, ``wake``,
               ``done``, ``fail`` (from :mod:`repro.sim.kernel`)
``net.deliver``  one frame handed to its destination adapter (carries
               enqueue time, so warp is recomputable from the trace)
``node.compute``  one charged compute interval on a node
``dsm.write``  a producer published an iteration of a shared location
``gr.hit``     ``Global_Read`` satisfied from the local age buffer
``gr.block``   ``Global_Read`` parked its caller (bound not met)
``gr.unblock`` the parked reader resumed; carries the waited seconds
``rb.begin`` / ``rb.end``  one Time-Warp rollback, with cascade depth
``bn.commit``  runs committed below the GVT floor
``gvt.advance``  the central GVT floor moved forward
``fault.*``    injected faults (``drop``, ``duplicate``, ``delay``,
               ``reorder``, ``flush``, ``crash-flush``)
=============  ========================================================

The ``time`` stamp comes from a *clock callable* handed in at
construction (``lambda: kernel.now``), so components without a kernel
reference (:class:`repro.bayes.rollback.ProcessorState`) can still emit.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from hashlib import sha256
from typing import Any, Callable, Iterator


@dataclass(frozen=True)
class ObsEvent:
    """One structured trace record.

    ``node`` is the application-node id the event concerns (-1 when the
    event is not tied to one, e.g. kernel process bookkeeping); ``fields``
    carries the kind-specific payload with JSON-scalar values only.
    """

    time: float
    kind: str
    node: int = -1
    fields: dict = field(default_factory=dict)

    def as_dict(self) -> dict:
        """Flat JSON-ready mapping (``t``/``kind``/``node`` + payload)."""
        out = {"t": self.time, "kind": self.kind, "node": self.node}
        out.update(self.fields)
        return out


class TraceBus:
    """Append-only, bounded collector of :class:`ObsEvent` records."""

    def __init__(
        self,
        clock: Callable[[], float],
        max_events: int = 500_000,
    ) -> None:
        self.clock = clock
        self.max_events = max_events
        self.events: list[ObsEvent] = []
        #: events discarded after the buffer filled (never silently lost)
        self.dropped = 0

    def emit(self, kind: str, node: int = -1, **fields: Any) -> None:
        """Record one event stamped with the current simulated time.

        Safe to call from any subsystem at any point in a run: the only
        side effect is a list append (or a dropped-counter bump once the
        buffer is full).
        """
        if len(self.events) >= self.max_events:
            self.dropped += 1
            return
        self.events.append(ObsEvent(self.clock(), kind, node, fields))

    def __len__(self) -> int:
        return len(self.events)

    def kind_counts(self) -> dict[str, int]:
        """Event count per kind, sorted by kind name."""
        counts: dict[str, int] = {}
        for e in self.events:
            counts[e.kind] = counts.get(e.kind, 0) + 1
        return dict(sorted(counts.items()))

    # ------------------------------------------------------------------
    # Serialisation
    # ------------------------------------------------------------------
    def write_jsonl(self, path: str) -> int:
        """Write one sorted-keys JSON object per line; returns the count.

        A trailer line (``kind = "trace.meta"``) records how many events
        the bounded buffer dropped, so a truncated trace is detectable.
        """
        with open(path, "w", encoding="utf-8") as fh:
            for e in self.events:
                fh.write(json.dumps(e.as_dict(), sort_keys=True))
                fh.write("\n")
            fh.write(
                json.dumps(
                    {
                        "t": self.events[-1].time if self.events else 0.0,
                        "kind": "trace.meta",
                        "node": -1,
                        "events": len(self.events),
                        "events_dropped": self.dropped,
                    },
                    sort_keys=True,
                )
            )
            fh.write("\n")
        return len(self.events)

    def digest(self) -> str:
        """SHA-256 over the canonical JSON of every event.

        Two runs with identical seeds must produce identical digests —
        ``tests/obs`` pins this.
        """
        h = sha256()
        for e in self.events:
            h.update(json.dumps(e.as_dict(), sort_keys=True).encode())
            h.update(b"\n")
        return h.hexdigest()


def read_jsonl(path: str) -> Iterator[ObsEvent]:
    """Yield the :class:`ObsEvent` records of a trace file.

    The ``trace.meta`` trailer (and blank lines) are skipped; payload
    keys other than ``t``/``kind``/``node`` become the event's fields.
    """
    with open(path, "r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            raw = json.loads(line)
            kind = raw.pop("kind")
            if kind == "trace.meta":
                continue
            time = raw.pop("t")
            node = raw.pop("node", -1)
            yield ObsEvent(time=time, kind=kind, node=node, fields=raw)
