"""Cross-run trace diffing: align two traces and report divergence.

``python -m repro.obs diff A.jsonl B.jsonl`` is the regression-triage
primitive for the bench trajectory: run the same experiment at two
settings (age=0 vs age=20, fault-free vs a chaos plan, two commits) and
ask *where* blocking, warp and rollback depth diverge, not just whether
a scalar moved.

Alignment is by **iteration**, the one clock both runs share: simulated
seconds drift between settings by construction (that drift is usually
the thing being measured), but a GA generation or a Bayes run number
means the same work in both traces.  ``gr.hit``/``gr.unblock`` carry
``curr_iter``, ``rb.begin`` carries ``iter`` and ``dsm.write`` carries
``iter``, so per-iteration series need no extra stamps.  The common
iteration range is bucketed so short and long runs produce comparable
tables.

All deltas are **B − A** (second argument minus first): diffing an
age=0 trace against an age=20 trace yields a *negative* blocked-time
delta — the age-20 run blocks less, exactly the paper's Figure-4 claim.
"""

from __future__ import annotations

from typing import Any, Iterable

from repro.obs.bus import ObsEvent
from repro.obs.report import (
    _table,
    blocking_summary,
    fault_counts,
    rollback_summary,
    warp_streams,
)

#: schema tag of the :func:`diff_traces` JSON envelope
DIFF_SCHEMA = "repro-obs-diff/1"

#: iteration buckets in the divergence table by default
DEFAULT_DIFF_BINS = 12

#: summary metrics diffed, in display order
SUMMARY_METRICS = (
    "t_end",
    "events",
    "gr.calls",
    "gr.hits",
    "gr.blocks",
    "gr.blocked_time",
    "gr.mean_staleness",
    "rb.rollbacks",
    "rb.corrections",
    "rb.depth_mean",
    "rb.depth_max",
    "warp.mean",
    "warp.p90",
    "warp.max",
    "net.pvm_frames",
    "faults",
)


def run_profile(events: Iterable[ObsEvent]) -> dict[str, Any]:
    """One run's alignment profile: summary scalars + iteration series.

    The iteration series maps iteration number to blocked seconds,
    staleness observations and rollback counts (zeros where an
    iteration saw none); ``max_iter`` bounds the aligned range.
    """
    events = sorted(events, key=lambda e: e.time)
    t_end = events[-1].time if events else 0.0
    blocking = blocking_summary(events)
    rb = rollback_summary(events)
    streams = warp_streams(events)
    warp_samples = [w for series in streams.values() for _, w in series]
    pvm_frames = 0
    stal_sum = 0.0
    stal_n = 0
    by_iter: dict[int, dict[str, float]] = {}

    def row(it: int) -> dict[str, float]:
        return by_iter.setdefault(
            it, {"blocked": 0.0, "staleness_sum": 0.0, "staleness_n": 0, "rollbacks": 0}
        )

    max_iter = 0
    for e in events:
        f = e.fields
        if e.kind == "net.deliver" and f.get("frame_kind") == "pvm":
            pvm_frames += 1
        elif e.kind in ("gr.hit", "gr.unblock"):
            it = int(f.get("curr_iter", 0))
            max_iter = max(max_iter, it)
            r = row(it)
            if "staleness" in f:
                s = float(f["staleness"])
                r["staleness_sum"] += s
                r["staleness_n"] += 1
                stal_sum += s
                stal_n += 1
            if e.kind == "gr.unblock":
                r["blocked"] += float(f.get("waited", 0.0))
        elif e.kind == "rb.begin":
            it = int(f.get("iter", 0))
            max_iter = max(max_iter, it)
            row(it)["rollbacks"] += 1
        elif e.kind == "dsm.write":
            max_iter = max(max_iter, int(f.get("iter", 0)))

    summary = {
        "t_end": t_end,
        "events": len(events),
        "gr.calls": sum(int(r["calls"]) for r in blocking.values()),
        "gr.hits": sum(int(r["hits"]) for r in blocking.values()),
        "gr.blocks": sum(int(r["blocks"]) for r in blocking.values()),
        "gr.blocked_time": sum(r["waited"] for r in blocking.values()),
        "gr.mean_staleness": (stal_sum / stal_n) if stal_n else 0.0,
        "rb.rollbacks": rb["rollbacks"] if rb else 0,
        "rb.corrections": rb["corrections"] if rb else 0,
        "rb.depth_mean": rb["depth_mean"] if rb else 0.0,
        "rb.depth_max": rb["depth_max"] if rb else 0,
        "warp.mean": (sum(warp_samples) / len(warp_samples)) if warp_samples else 0.0,
        "warp.p90": _p(warp_samples, 90),
        "warp.max": max(warp_samples) if warp_samples else 0.0,
        "net.pvm_frames": pvm_frames,
        "faults": sum(fault_counts(events).values()),
    }
    return {"summary": summary, "by_iter": by_iter, "max_iter": max_iter}


def _p(samples: list[float], q: int) -> float:
    if not samples:
        return 0.0
    from repro.obs.metrics import percentile_from_samples

    return percentile_from_samples(samples, q)


def _bucket_series(
    by_iter: dict[int, dict[str, float]], lo: int, hi: int, bins: int
) -> list[dict[str, float]]:
    """Aggregate an iteration series into ``bins`` buckets over [lo, hi]."""
    n = hi - lo + 1
    bins = max(1, min(bins, n))
    out = []
    for b in range(bins):
        b_lo = lo + (n * b) // bins
        b_hi = lo + (n * (b + 1)) // bins - 1
        blocked = stal_sum = 0.0
        stal_n = rollbacks = 0
        for it in range(b_lo, b_hi + 1):
            r = by_iter.get(it)
            if r is None:
                continue
            blocked += r["blocked"]
            stal_sum += r["staleness_sum"]
            stal_n += int(r["staleness_n"])
            rollbacks += int(r["rollbacks"])
        out.append(
            {
                "iters": [b_lo, b_hi],
                "blocked": blocked,
                "staleness": (stal_sum / stal_n) if stal_n else 0.0,
                "rollbacks": rollbacks,
            }
        )
    return out


def diff_traces(
    events_a: Iterable[ObsEvent],
    events_b: Iterable[ObsEvent],
    bins: int = DEFAULT_DIFF_BINS,
    label_a: str = "A",
    label_b: str = "B",
) -> dict[str, Any]:
    """Diff two traces; every delta is **B − A**.

    Returns the ``repro-obs-diff/1`` envelope: per-metric summary rows
    (``a``, ``b``, ``delta``), and per-iteration-bucket divergence of
    blocked time, staleness and rollbacks over the common iteration
    range.
    """
    pa = run_profile(events_a)
    pb = run_profile(events_b)
    summary = {
        m: {
            "a": pa["summary"][m],
            "b": pb["summary"][m],
            "delta": pb["summary"][m] - pa["summary"][m],
        }
        for m in SUMMARY_METRICS
    }
    common_max = min(pa["max_iter"], pb["max_iter"])
    buckets: list[dict[str, Any]] = []
    if common_max >= 1:
        ba = _bucket_series(pa["by_iter"], 1, common_max, bins)
        bb = _bucket_series(pb["by_iter"], 1, common_max, bins)
        for ra, rbk in zip(ba, bb):
            buckets.append(
                {
                    "iters": ra["iters"],
                    "blocked_a": ra["blocked"],
                    "blocked_b": rbk["blocked"],
                    "blocked_delta": rbk["blocked"] - ra["blocked"],
                    "staleness_a": ra["staleness"],
                    "staleness_b": rbk["staleness"],
                    "rollbacks_a": ra["rollbacks"],
                    "rollbacks_b": rbk["rollbacks"],
                    "rollbacks_delta": rbk["rollbacks"] - ra["rollbacks"],
                }
            )
    return {
        "schema": DIFF_SCHEMA,
        "labels": {"a": label_a, "b": label_b},
        "delta": {m: summary[m]["delta"] for m in SUMMARY_METRICS},
        "summary": summary,
        "common_max_iter": common_max,
        "iteration_buckets": buckets,
    }


def render_diff(d: dict[str, Any]) -> str:
    """Text rendering of a :func:`diff_traces` envelope."""
    la, lb = d["labels"]["a"], d["labels"]["b"]
    lines = [f"Trace diff — A: {la}  vs  B: {lb}  (deltas are B - A)"]
    rows = [
        [m, s["a"], s["b"], s["delta"]]
        for m, s in d["summary"].items()
        if s["a"] != 0 or s["b"] != 0
    ]
    lines.append(_table(["metric", "A", "B", "delta"], rows, title="Summary"))
    buckets = d["iteration_buckets"]
    if buckets:
        brows = [
            [
                f"{b['iters'][0]}-{b['iters'][1]}",
                b["blocked_a"], b["blocked_b"], b["blocked_delta"],
                b["staleness_a"], b["staleness_b"],
                b["rollbacks_delta"],
            ]
            for b in buckets
        ]
        lines.append(
            _table(
                ["iters", "blocked A (s)", "blocked B (s)", "Δ blocked",
                 "stale A", "stale B", "Δ rollbacks"],
                brows,
                title=f"Per-iteration divergence [1 .. {d['common_max_iter']}]",
            )
        )
        worst = max(buckets, key=lambda b: abs(b["blocked_delta"]))
        if worst["blocked_delta"] != 0:
            lines.append(
                "Largest blocking divergence at iterations "
                f"{worst['iters'][0]}-{worst['iters'][1]}: "
                f"{worst['blocked_delta']:+.4g}s"
            )
    return "\n\n".join(lines)
