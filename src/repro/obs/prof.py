"""Host-time section profiler: where the *Python process* burns CPU.

The causal layer (:mod:`repro.obs.causal`) explains **simulated** time
— who blocked whom, which write unblocked which reader.  This module
answers the orthogonal question the bench trajectory keeps raising:
where does the *host* wall clock go while the simulator runs?  Kernel
loop bookkeeping, numpy population math, fabric arithmetic, obs I/O, or
the parallel kernel's IPC barrier waits?  (Lubachevsky's parallel
cellular-array papers justify a parallel scheme exactly this way:
utilization and overhead measurement, not just speedup.)

Design constraints, in priority order:

1. **Determinism neutrality.**  Profiling must never move a golden
   digest.  The profiler only reads ``time.perf_counter`` and appends
   to its own dicts; it never touches the simulated clock, RNG streams
   or event order.  With profiling off every hook is a single global /
   attribute ``is None`` check — the same idiom as ``kernel.obs`` —
   and a test pins GOLDEN and SWITCHED_GOLDEN digests with profiling
   *on*.
2. **Stdlib only.**  ``time.perf_counter`` and plain dicts; no
   ``cProfile`` (its per-call hook is ~2× slowdown and its output is
   function-shaped, not subsystem-shaped).
3. **Section-shaped output.**  Sections are *stack paths* (e.g.
   ``kernel.loop/proc.step/numpy.ga``), so the snapshot renders as a
   flame-style tree; self-time accounting guarantees the per-path
   seconds sum exactly to the profiled wall interval, which is how the
   ``attributed_fraction`` acceptance metric (≥ 0.9 to *named*
   sections) is computed.

Two hook styles feed the profiler:

* the **kernel loop** (see :meth:`repro.sim.kernel.Kernel.run`)
  wraps every executed event in a section named after the callback's
  subsystem (:func:`category_of`), charging loop bookkeeping to
  ``kernel.loop`` and event execution to ``proc.step`` / ``network`` /
  ``pvm`` / …;
* **ambient sections** — ``with prof_section("numpy.ga"): ...`` —
  mark regions that run *inside* a kernel event but belong to another
  subsystem (numpy compute in the deme step, gzip trace flushes,
  worker IPC waits).  They no-op unless a profiler is activated for
  the current process.

``python -m repro.obs report --prof prof.json`` and the dashboard
render the resulting ``repro-obs-prof/1`` envelope.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Any, Callable, Iterator

#: schema tag of the :func:`profile_report` envelope
PROF_SCHEMA = "repro-obs-prof/1"

#: the pseudo-section holding time outside any named section
ROOT = "(unattributed)"

#: module-prefix -> section name for kernel event callbacks, first
#: match wins (checked most-specific first)
MODULE_SECTIONS: tuple[tuple[str, str], ...] = (
    ("repro.sim.parallel", "par.harness"),
    ("repro.sim", "proc.step"),
    ("repro.network", "network"),
    ("repro.pvm", "pvm"),
    ("repro.cluster", "node"),
    ("repro.core", "dsm"),
    ("repro.ga", "app.ga"),
    ("repro.bayes", "app.bayes"),
    ("repro.faults", "faults"),
    ("repro.obs", "obs.io"),
)


def category_of_module(module: str) -> str:
    """Section name for an event callback defined in ``module``."""
    for prefix, section in MODULE_SECTIONS:
        if module.startswith(prefix):
            return section
    return "proc.step" if module == "" else "other"


def category_of(fn: Callable[..., Any]) -> str:
    """Section name for a kernel event callback, from its module."""
    return category_of_module(getattr(fn, "__module__", "") or "")


class HostProfiler:
    """Section-stack host-time profiler with exact self-time accounting.

    ``push``/``pop`` maintain a stack of section names; wall time is
    charged to the section path on top of the stack, so nested sections
    carve their time *out* of the enclosing one and the per-path totals
    sum exactly to ``stop() - start()``.  All methods are cheap enough
    to sit in the kernel's event loop when profiling is on (two
    ``perf_counter`` reads and two dict operations per event).
    """

    __slots__ = ("clock", "sections", "calls", "_stack", "_path", "_last",
                 "_t_start", "total_s", "meta")

    def __init__(self, clock: Callable[[], float] | None = None) -> None:
        # repro-lint: allow[RPR002] — host wall-clock measurement is the point
        self.clock = clock or time.perf_counter
        #: section path -> accumulated self seconds
        self.sections: dict[str, float] = {}
        #: section path -> number of times entered
        self.calls: dict[str, int] = {}
        self._stack: list[str] = []
        self._path = ROOT
        self._last = 0.0
        self._t_start: float | None = None
        self.total_s = 0.0
        #: free-form provenance merged into the snapshot (shard id, app)
        self.meta: dict[str, Any] = {}

    # -- lifecycle ------------------------------------------------------
    def start(self) -> None:
        """Open the profiled interval (idempotent)."""
        if self._t_start is None:
            self._t_start = self._last = self.clock()

    def stop(self) -> None:
        """Close the profiled interval; unwinds any open sections."""
        if self._t_start is None:
            return
        while self._stack:
            self.pop()
        now = self.clock()
        self._charge(now)
        self.total_s += now - self._t_start
        self._t_start = None

    @property
    def running(self) -> bool:
        """Whether the profiled interval is open."""
        return self._t_start is not None

    # -- section stack --------------------------------------------------
    def _charge(self, now: float) -> None:
        dt = now - self._last
        if dt > 0.0:
            path = self._path
            self.sections[path] = self.sections.get(path, 0.0) + dt
        self._last = now

    def push(self, name: str) -> None:
        """Enter section ``name`` (nested under the current section)."""
        if self._t_start is None:
            self.start()
        self._charge(self.clock())
        self._stack.append(self._path)
        self._path = name if self._path is ROOT else f"{self._path}/{name}"
        self.calls[self._path] = self.calls.get(self._path, 0) + 1

    def pop(self) -> None:
        """Leave the current section."""
        if not self._stack:
            return
        self._charge(self.clock())
        self._path = self._stack.pop()

    @contextmanager
    def section(self, name: str) -> Iterator[None]:
        """``with prof.section("numpy.ga"): ...``"""
        self.push(name)
        try:
            yield
        finally:
            self.pop()

    # -- reporting ------------------------------------------------------
    def snapshot(self) -> dict[str, Any]:
        """The profile as plain data (stops the interval if still open).

        ``attributed_fraction`` is the share of the profiled wall
        interval charged to *named* sections (everything except the
        :data:`ROOT` remainder) — the ≥ 0.9 acceptance quantity.
        """
        if self.running:
            self.stop()
        total = self.total_s
        unattributed = self.sections.get(ROOT, 0.0)
        return {
            "total_s": total,
            "attributed_fraction": (
                (total - unattributed) / total if total > 0 else 1.0
            ),
            "sections": {
                path: {"self_s": s, "calls": self.calls.get(path, 0)}
                for path, s in sorted(self.sections.items())
            },
            **self.meta,
        }


# ---------------------------------------------------------------------------
# Ambient profiler: the per-process hook point for code without a kernel
# ---------------------------------------------------------------------------

#: the process-wide active profiler; None = every hook is a no-op
_CURRENT: HostProfiler | None = None


def current() -> HostProfiler | None:
    """The active profiler of this process, if any."""
    return _CURRENT


def activate(prof: HostProfiler) -> HostProfiler:
    """Install ``prof`` as the process-wide profiler and start it."""
    global _CURRENT
    _CURRENT = prof
    prof.start()
    return prof


def deactivate() -> HostProfiler | None:
    """Stop and uninstall the process-wide profiler; returns it."""
    global _CURRENT
    prof, _CURRENT = _CURRENT, None
    if prof is not None:
        prof.stop()
    return prof


@contextmanager
def prof_section(name: str) -> Iterator[None]:
    """Ambient section hook: charges to the active profiler, else no-op.

    This is the obs-style guard for subsystems without a kernel
    reference — the numpy block in the deme step, the gzip trace
    flush, the worker's IPC barrier wait.  Cost when profiling is off:
    one module-global read.
    """
    prof = _CURRENT
    if prof is None:
        yield
        return
    prof.push(name)
    try:
        yield
    finally:
        prof.pop()


# ---------------------------------------------------------------------------
# Envelope + rendering
# ---------------------------------------------------------------------------

def profile_report(
    main: dict[str, Any],
    shards: list[dict[str, Any]] | None = None,
    meta: dict[str, Any] | None = None,
) -> dict[str, Any]:
    """Bundle snapshots into the ``repro-obs-prof/1`` envelope.

    ``main`` is the coordinating process's snapshot; ``shards`` the
    per-worker snapshots of a sharded run (empty for serial runs).
    """
    from repro.util.envelope import make_envelope

    payload: dict[str, Any] = {
        "main": main,
        "shards": shards or [],
        "meta": meta or {},
    }
    return make_envelope(PROF_SCHEMA, payload)


def _bar(frac: float, width: int = 30) -> str:
    n = int(round(max(0.0, min(1.0, frac)) * width))
    return "#" * n + "." * (width - n)


def _render_snapshot(snap: dict[str, Any], title: str) -> str:
    total = float(snap.get("total_s", 0.0))
    lines = [
        f"{title} — {total:.3f}s host wall, "
        f"{snap.get('attributed_fraction', 0.0):.1%} attributed to named sections"
    ]
    sections = snap.get("sections", {})
    for path in sorted(sections, key=lambda p: (-sections[p]["self_s"], p)):
        row = sections[path]
        self_s = float(row["self_s"])
        frac = self_s / total if total > 0 else 0.0
        depth = path.count("/")
        name = path.rsplit("/", 1)[-1]
        lines.append(
            f"  {_bar(frac)} {frac:6.1%} {self_s:9.3f}s "
            f"{'  ' * depth}{name}  [{path}]  x{row.get('calls', 0)}"
        )
    return "\n".join(lines)


def render_profile(env: dict[str, Any]) -> str:
    """Text flame-style rendering of a ``repro-obs-prof/1`` envelope.

    Sections sort by self-time (largest first); the bar is each path's
    share of the profiled wall interval, indentation mirrors nesting.
    """
    parts = [_render_snapshot(env["main"], "Host-time profile (main process)")]
    for snap in env.get("shards", []):
        label = snap.get("shard", "?")
        parts.append(_render_snapshot(snap, f"Shard {label} worker"))
    meta = env.get("meta") or {}
    if meta:
        parts.append(
            "meta: " + "  ".join(f"{k}={v}" for k, v in sorted(meta.items()))
        )
    return "\n\n".join(parts)


def profile_html(env: dict[str, Any]) -> str:
    """A self-contained HTML fragment (flame-style bars) for the dashboard."""
    from html import escape

    def rows(snap: dict[str, Any], title: str) -> str:
        total = float(snap.get("total_s", 0.0)) or 1.0
        out = [
            f"<h3>{escape(title)} — {snap.get('total_s', 0.0):.3f}s, "
            f"{snap.get('attributed_fraction', 0.0):.1%} attributed</h3>"
        ]
        sections = snap.get("sections", {})
        for path in sorted(sections, key=lambda p: (-sections[p]["self_s"], p)):
            row = sections[path]
            frac = float(row["self_s"]) / total
            indent = 12 * path.count("/")
            out.append(
                "<div class='profrow' style='margin-left:%dpx'>"
                "<span class='profbar' style='width:%.2f%%'></span>"
                "<span class='proflbl'>%s %.1f%% (%.3fs, x%d)</span></div>"
                % (indent, 100.0 * frac, escape(path), 100.0 * frac,
                   row["self_s"], row.get("calls", 0))
            )
        return "\n".join(out)

    parts = [rows(env["main"], "main process")]
    for snap in env.get("shards", []):
        parts.append(rows(snap, f"shard {snap.get('shard', '?')} worker"))
    return "\n".join(parts)
