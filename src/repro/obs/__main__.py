"""``python -m repro.obs`` — trace reports, causal analysis, diffs.

Subcommands
-----------
``report <trace.jsonl> [--metrics m.json] [--bins N] [--json] [--out PATH]``
    Render the per-node timeline, blocking/rollback summary and warp
    table of a trace produced by an experiment's ``--trace`` knob (or
    :meth:`repro.obs.bus.TraceBus.write_jsonl` directly).  ``--json``
    emits the machine-readable ``repro-obs-report/1`` envelope instead
    of text.
``critical-path <trace.jsonl> [--out PATH]``
    Build the causal span graph, attribute wall time to
    compute/blocking/network/rollback per node, and walk the critical
    path; emits the ``repro-obs-critical-path/1`` JSON artifact.
``diff <A.jsonl> <B.jsonl> [--bins N] [--json] [--out PATH]``
    Align two runs by iteration and report where blocking, staleness,
    warp and rollback depth diverge.  All deltas are B − A.
``dashboard <trace.jsonl> [--metrics m.json] [--title T] [--out PATH]``
    Render a zero-dependency single-file HTML dashboard (per-node
    timelines, critical path, warp-over-time, staleness histogram);
    default output is the trace path with an ``.html`` suffix.
``validate <trace.jsonl> [--strict]``
    Check a trace file against the documented event schema; exit 1 on
    violations (the CI gate for trace-producing jobs).  Accepts plain,
    gzipped and rotated traces.
``store {put,ls,get,diff} [--root DIR]``
    The content-addressed run store (``<root>/runs/<digest16>/``):
    ``put`` archives artifact files (traces compressed) under their
    content digest, ``ls`` lists stored runs, ``get`` extracts one,
    ``diff`` aligns two stored runs by ref and reports divergence.
``trend [--root DIR] [--check] [--threshold F] [--json]``
    Perf-trajectory analysis over ``BENCH_*.json`` (+ bench payloads in
    the run store): per-key sparkline table and pct-change of the
    latest transition; ``--check`` exits 1 on a regression beyond the
    threshold (the CI trend-gate).
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.obs.bus import read_jsonl, read_meta
from repro.obs.causal import critical_path_report
from repro.obs.dashboard import render_dashboard
from repro.obs.diff import DEFAULT_DIFF_BINS, diff_traces, render_diff
from repro.obs.report import DEFAULT_BINS, render_report, report_dict
from repro.obs.schema import validate_trace
from repro.util.envelope import render_envelope


def _read_events(path: str) -> list:
    return list(read_jsonl(path))


def _read_metrics(path: str | None) -> dict | None:
    if not path:
        return None
    with open(path, "r", encoding="utf-8") as fh:
        return json.load(fh)


def _write_out(text: str, out: str | None, what: str) -> None:
    if out:
        with open(out, "w", encoding="utf-8") as fh:
            fh.write(text)
            if not text.endswith("\n"):
                fh.write("\n")
        print(f"{what} -> {out}")
    else:
        print(text)


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description="Observability reports and causal analysis of run traces.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    rep = sub.add_parser("report", help="render a trace.jsonl as a report")
    rep.add_argument("trace", help="path to the JSONL trace file")
    rep.add_argument(
        "--metrics", default=None, metavar="PATH",
        help="optional metrics-snapshot JSON to append to the report",
    )
    rep.add_argument(
        "--bins", type=int, default=DEFAULT_BINS,
        help=f"timeline strip width in bins (default {DEFAULT_BINS})",
    )
    rep.add_argument(
        "--json", action="store_true",
        help="emit the repro-obs-report/1 JSON envelope instead of text",
    )
    rep.add_argument(
        "--out", default=None, metavar="PATH",
        help="write the report to PATH instead of stdout",
    )
    rep.add_argument(
        "--prof", default=None, metavar="PATH",
        help="repro-obs-prof/1 JSON to append as a host-time section",
    )

    cpp = sub.add_parser(
        "critical-path",
        help="causal span graph, wall-time attribution and critical path",
    )
    cpp.add_argument("trace", help="path to the JSONL trace file")
    cpp.add_argument(
        "--out", default=None, metavar="PATH",
        help="write the repro-obs-critical-path/1 JSON to PATH",
    )

    dif = sub.add_parser("diff", help="diff two traces (deltas are B - A)")
    dif.add_argument("trace_a", help="baseline trace (A)")
    dif.add_argument("trace_b", help="comparison trace (B)")
    dif.add_argument(
        "--bins", type=int, default=DEFAULT_DIFF_BINS,
        help=f"iteration buckets in the divergence table (default {DEFAULT_DIFF_BINS})",
    )
    dif.add_argument(
        "--json", action="store_true",
        help="emit the repro-obs-diff/1 JSON envelope instead of text",
    )
    dif.add_argument(
        "--out", default=None, metavar="PATH",
        help="write the diff to PATH instead of stdout",
    )
    dif.add_argument(
        "--store", default=None, metavar="DIR",
        help="treat the two positionals as run-store refs under DIR",
    )

    dash = sub.add_parser(
        "dashboard", help="render a single-file HTML run dashboard"
    )
    dash.add_argument("trace", help="path to the JSONL trace file")
    dash.add_argument(
        "--metrics", default=None, metavar="PATH",
        help="optional metrics-snapshot JSON (adds context to the header)",
    )
    dash.add_argument(
        "--title", default=None, help="page title (default: trace filename)"
    )
    dash.add_argument(
        "--out", default=None, metavar="PATH",
        help="output HTML path (default: trace path with .html suffix)",
    )
    dash.add_argument(
        "--prof", default=None, metavar="PATH",
        help="repro-obs-prof/1 JSON to render as a host-time card",
    )

    val = sub.add_parser(
        "validate", help="check a trace file against the event schema"
    )
    val.add_argument("trace", help="path to the JSONL trace file")
    val.add_argument(
        "--strict", action="store_true",
        help="treat unknown event kinds as errors, not warnings",
    )

    sto = sub.add_parser("store", help="content-addressed run store")
    sto.add_argument(
        "--root", default=".", metavar="DIR",
        help="store root; runs live at <root>/runs/<digest16> (default .)",
    )
    sto_sub = sto.add_subparsers(dest="store_command", required=True)
    sp = sto_sub.add_parser("put", help="archive artifact files as one run")
    sp.add_argument("files", nargs="+", help="artifact files (traces compressed)")
    sp.add_argument(
        "--meta", action="append", default=[], metavar="K=V",
        help="metadata entries (repeatable)",
    )
    sto_sub.add_parser("ls", help="list stored runs, oldest first")
    sg = sto_sub.add_parser("get", help="extract a stored run")
    sg.add_argument("ref", help="digest prefix or 'latest'")
    sg.add_argument("dest", help="output directory")
    sd = sto_sub.add_parser("diff", help="diff the traces of two stored runs")
    sd.add_argument("ref_a", help="baseline run ref (A)")
    sd.add_argument("ref_b", help="comparison run ref (B)")
    sd.add_argument("--bins", type=int, default=DEFAULT_DIFF_BINS)
    sd.add_argument("--json", action="store_true")
    sd.add_argument("--out", default=None, metavar="PATH")

    trd = sub.add_parser("trend", help="perf-trajectory analysis of BENCH_*.json")
    trd.add_argument(
        "--root", default=".", metavar="DIR",
        help="directory holding BENCH_<n>.json files (default .)",
    )
    trd.add_argument(
        "--store", default=None, metavar="DIR",
        help="also include bench.json artifacts from this run store",
    )
    trd.add_argument(
        "--threshold", type=float, default=None, metavar="F",
        help="regression threshold as a fraction (default 0.25)",
    )
    trd.add_argument(
        "--min-magnitude", type=float, default=None, metavar="F",
        help="skip comparisons where both sides are below F (default 0.05)",
    )
    trd.add_argument(
        "--check", action="store_true",
        help="exit 1 if the latest transition regressed beyond the threshold",
    )
    trd.add_argument(
        "--json", action="store_true",
        help="emit the repro-obs-trend/1 JSON envelope instead of text",
    )
    trd.add_argument(
        "--verbose", action="store_true",
        help="include informational / noisy / new keys in the table",
    )
    trd.add_argument("--out", default=None, metavar="PATH")

    args = parser.parse_args(argv)

    try:
        if args.command == "report":
            events = _read_events(args.trace)
            metrics = _read_metrics(args.metrics)
            prof = _read_metrics(args.prof)
            meta = read_meta(args.trace)
            if args.json:
                text = render_envelope(
                    report_dict(
                        events, metrics=metrics, bins=args.bins, prof=prof, meta=meta
                    )
                )
            else:
                text = render_report(
                    events, metrics=metrics, bins=args.bins, prof=prof, meta=meta
                )
            _write_out(text, args.out, "report")
            return 0

        if args.command == "critical-path":
            events = _read_events(args.trace)
            text = json.dumps(
                critical_path_report(events), indent=2, sort_keys=True
            )
            _write_out(text, args.out, "critical path")
            return 0

        if args.command == "diff":
            path_a, path_b = args.trace_a, args.trace_b
            label_a, label_b = path_a, path_b
            if args.store:
                from repro.obs.store import RunStore

                store = RunStore(args.store)
                ref_a, ref_b = store.resolve(path_a), store.resolve(path_b)
                path_a, path_b = store.trace_path(ref_a), store.trace_path(ref_b)
                label_a, label_b = f"store:{ref_a}", f"store:{ref_b}"
            d = diff_traces(
                _read_events(path_a),
                _read_events(path_b),
                bins=args.bins,
                label_a=label_a,
                label_b=label_b,
            )
            text = json.dumps(d, indent=2, sort_keys=True) if args.json else render_diff(d)
            _write_out(text, args.out, "diff")
            return 0

        if args.command == "dashboard":
            events = _read_events(args.trace)
            metrics = _read_metrics(args.metrics)
            html = render_dashboard(
                events, metrics=metrics, title=args.title or args.trace,
                prof=_read_metrics(args.prof),
            )
            out = args.out or (
                args.trace.removesuffix(".gz").removesuffix(".jsonl") + ".html"
            )
            with open(out, "w", encoding="utf-8") as fh:
                fh.write(html)
            print(f"dashboard -> {out}")
            return 0

        if args.command == "validate":
            verdict = validate_trace(args.trace, strict=args.strict)
            for msg in verdict["warnings"]:
                print(f"warning: {msg}", file=sys.stderr)
            for msg in verdict["errors"]:
                print(f"error: {msg}", file=sys.stderr)
            status = "OK" if verdict["ok"] else "INVALID"
            print(
                f"{args.trace}: {status} — {verdict['events']} events, "
                f"{verdict['error_count']} errors, "
                f"{verdict['warning_count']} warnings"
            )
            return 0 if verdict["ok"] else 1

        if args.command == "store":
            from repro.obs.store import RunStore

            store = RunStore(args.root)
            if args.store_command == "put":
                meta = {}
                for entry in args.meta:
                    if "=" not in entry:
                        print(f"error: --meta needs K=V, got {entry!r}", file=sys.stderr)
                        return 2
                    k, _, v = entry.partition("=")
                    meta[k] = v
                import os as _os

                ref = store.put(
                    {_os.path.basename(p): p for p in args.files}, meta=meta
                )
                print(ref)
                return 0
            if args.store_command == "ls":
                for run in store.ls():
                    meta = " ".join(f"{k}={v}" for k, v in sorted(run["meta"].items()))
                    names = ",".join(sorted(run["files"]))
                    print(f"{run['ref']}  seq={run['seq']}  [{names}]  {meta}")
                return 0
            if args.store_command == "get":
                names = store.get(args.ref, args.dest)
                print(f"{store.resolve(args.ref)} -> {args.dest}: {', '.join(names)}")
                return 0
            if args.store_command == "diff":
                ref_a, ref_b = store.resolve(args.ref_a), store.resolve(args.ref_b)
                d = diff_traces(
                    _read_events(store.trace_path(ref_a)),
                    _read_events(store.trace_path(ref_b)),
                    bins=args.bins,
                    label_a=f"store:{ref_a}",
                    label_b=f"store:{ref_b}",
                )
                text = (
                    json.dumps(d, indent=2, sort_keys=True)
                    if args.json
                    else render_diff(d)
                )
                _write_out(text, args.out, "diff")
                return 0

        if args.command == "trend":
            from repro.obs.trend import (
                DEFAULT_MIN_MAGNITUDE,
                DEFAULT_THRESHOLD,
                analyze,
                load_points,
                render_trend,
                trend_report,
            )

            points = load_points(args.root, store_root=args.store)
            analysis = analyze(
                points,
                threshold=(
                    DEFAULT_THRESHOLD if args.threshold is None else args.threshold
                ),
                min_magnitude=(
                    DEFAULT_MIN_MAGNITUDE
                    if args.min_magnitude is None
                    else args.min_magnitude
                ),
            )
            if args.json:
                text = json.dumps(trend_report(analysis), indent=2, sort_keys=True)
            else:
                text = render_trend(analysis, verbose=args.verbose)
            _write_out(text, args.out, "trend")
            if args.check and not analysis["ok"]:
                return 1
            return 0
    except (OSError, KeyError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    return 2  # pragma: no cover - unreachable (subparser is required)


if __name__ == "__main__":
    raise SystemExit(main())
