"""``python -m repro.obs`` — render trace reports.

Subcommands
-----------
``report <trace.jsonl> [--metrics metrics.json] [--bins N] [--out PATH]``
    Render the per-node timeline, blocking/rollback summary and warp
    table of a trace produced by an experiment's ``--trace`` knob (or
    :meth:`repro.obs.bus.TraceBus.write_jsonl` directly).
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.obs.bus import read_jsonl
from repro.obs.report import DEFAULT_BINS, render_report


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description="Render observability reports from structured run traces.",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    rep = sub.add_parser("report", help="render a trace.jsonl as a text report")
    rep.add_argument("trace", help="path to the JSONL trace file")
    rep.add_argument(
        "--metrics",
        default=None,
        metavar="PATH",
        help="optional metrics-snapshot JSON to append to the report",
    )
    rep.add_argument(
        "--bins",
        type=int,
        default=DEFAULT_BINS,
        help=f"timeline strip width in bins (default {DEFAULT_BINS})",
    )
    rep.add_argument(
        "--out",
        default=None,
        metavar="PATH",
        help="write the report to PATH instead of stdout",
    )
    args = parser.parse_args(argv)

    try:
        events = list(read_jsonl(args.trace))
    except OSError as exc:
        print(f"error: cannot read trace {args.trace!r}: {exc}", file=sys.stderr)
        return 2
    metrics = None
    if args.metrics:
        try:
            with open(args.metrics, "r", encoding="utf-8") as fh:
                metrics = json.load(fh)
        except OSError as exc:
            print(
                f"error: cannot read metrics {args.metrics!r}: {exc}",
                file=sys.stderr,
            )
            return 2
    text = render_report(events, metrics=metrics, bins=args.bins)
    if args.out:
        with open(args.out, "w", encoding="utf-8") as fh:
            fh.write(text)
            fh.write("\n")
        print(f"report -> {args.out}")
    else:
        print(text)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
