"""``python -m repro.obs`` — trace reports, causal analysis, diffs.

Subcommands
-----------
``report <trace.jsonl> [--metrics m.json] [--bins N] [--json] [--out PATH]``
    Render the per-node timeline, blocking/rollback summary and warp
    table of a trace produced by an experiment's ``--trace`` knob (or
    :meth:`repro.obs.bus.TraceBus.write_jsonl` directly).  ``--json``
    emits the machine-readable ``repro-obs-report/1`` envelope instead
    of text.
``critical-path <trace.jsonl> [--out PATH]``
    Build the causal span graph, attribute wall time to
    compute/blocking/network/rollback per node, and walk the critical
    path; emits the ``repro-obs-critical-path/1`` JSON artifact.
``diff <A.jsonl> <B.jsonl> [--bins N] [--json] [--out PATH]``
    Align two runs by iteration and report where blocking, staleness,
    warp and rollback depth diverge.  All deltas are B − A.
``dashboard <trace.jsonl> [--metrics m.json] [--title T] [--out PATH]``
    Render a zero-dependency single-file HTML dashboard (per-node
    timelines, critical path, warp-over-time, staleness histogram);
    default output is the trace path with an ``.html`` suffix.
``validate <trace.jsonl> [--strict]``
    Check a trace file against the documented event schema; exit 1 on
    violations (the CI gate for trace-producing jobs).
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.obs.bus import read_jsonl
from repro.obs.causal import critical_path_report
from repro.obs.dashboard import render_dashboard
from repro.obs.diff import DEFAULT_DIFF_BINS, diff_traces, render_diff
from repro.obs.report import DEFAULT_BINS, render_report, report_dict
from repro.obs.schema import validate_trace
from repro.util.envelope import render_envelope


def _read_events(path: str) -> list:
    return list(read_jsonl(path))


def _read_metrics(path: str | None) -> dict | None:
    if not path:
        return None
    with open(path, "r", encoding="utf-8") as fh:
        return json.load(fh)


def _write_out(text: str, out: str | None, what: str) -> None:
    if out:
        with open(out, "w", encoding="utf-8") as fh:
            fh.write(text)
            if not text.endswith("\n"):
                fh.write("\n")
        print(f"{what} -> {out}")
    else:
        print(text)


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description="Observability reports and causal analysis of run traces.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    rep = sub.add_parser("report", help="render a trace.jsonl as a report")
    rep.add_argument("trace", help="path to the JSONL trace file")
    rep.add_argument(
        "--metrics", default=None, metavar="PATH",
        help="optional metrics-snapshot JSON to append to the report",
    )
    rep.add_argument(
        "--bins", type=int, default=DEFAULT_BINS,
        help=f"timeline strip width in bins (default {DEFAULT_BINS})",
    )
    rep.add_argument(
        "--json", action="store_true",
        help="emit the repro-obs-report/1 JSON envelope instead of text",
    )
    rep.add_argument(
        "--out", default=None, metavar="PATH",
        help="write the report to PATH instead of stdout",
    )

    cpp = sub.add_parser(
        "critical-path",
        help="causal span graph, wall-time attribution and critical path",
    )
    cpp.add_argument("trace", help="path to the JSONL trace file")
    cpp.add_argument(
        "--out", default=None, metavar="PATH",
        help="write the repro-obs-critical-path/1 JSON to PATH",
    )

    dif = sub.add_parser("diff", help="diff two traces (deltas are B - A)")
    dif.add_argument("trace_a", help="baseline trace (A)")
    dif.add_argument("trace_b", help="comparison trace (B)")
    dif.add_argument(
        "--bins", type=int, default=DEFAULT_DIFF_BINS,
        help=f"iteration buckets in the divergence table (default {DEFAULT_DIFF_BINS})",
    )
    dif.add_argument(
        "--json", action="store_true",
        help="emit the repro-obs-diff/1 JSON envelope instead of text",
    )
    dif.add_argument(
        "--out", default=None, metavar="PATH",
        help="write the diff to PATH instead of stdout",
    )

    dash = sub.add_parser(
        "dashboard", help="render a single-file HTML run dashboard"
    )
    dash.add_argument("trace", help="path to the JSONL trace file")
    dash.add_argument(
        "--metrics", default=None, metavar="PATH",
        help="optional metrics-snapshot JSON (adds context to the header)",
    )
    dash.add_argument(
        "--title", default=None, help="page title (default: trace filename)"
    )
    dash.add_argument(
        "--out", default=None, metavar="PATH",
        help="output HTML path (default: trace path with .html suffix)",
    )

    val = sub.add_parser(
        "validate", help="check a trace file against the event schema"
    )
    val.add_argument("trace", help="path to the JSONL trace file")
    val.add_argument(
        "--strict", action="store_true",
        help="treat unknown event kinds as errors, not warnings",
    )

    args = parser.parse_args(argv)

    try:
        if args.command == "report":
            events = _read_events(args.trace)
            metrics = _read_metrics(args.metrics)
            if args.json:
                text = render_envelope(
                    report_dict(events, metrics=metrics, bins=args.bins)
                )
            else:
                text = render_report(events, metrics=metrics, bins=args.bins)
            _write_out(text, args.out, "report")
            return 0

        if args.command == "critical-path":
            events = _read_events(args.trace)
            text = json.dumps(
                critical_path_report(events), indent=2, sort_keys=True
            )
            _write_out(text, args.out, "critical path")
            return 0

        if args.command == "diff":
            d = diff_traces(
                _read_events(args.trace_a),
                _read_events(args.trace_b),
                bins=args.bins,
                label_a=args.trace_a,
                label_b=args.trace_b,
            )
            text = json.dumps(d, indent=2, sort_keys=True) if args.json else render_diff(d)
            _write_out(text, args.out, "diff")
            return 0

        if args.command == "dashboard":
            events = _read_events(args.trace)
            metrics = _read_metrics(args.metrics)
            html = render_dashboard(
                events, metrics=metrics, title=args.title or args.trace
            )
            out = args.out or (args.trace.removesuffix(".jsonl") + ".html")
            with open(out, "w", encoding="utf-8") as fh:
                fh.write(html)
            print(f"dashboard -> {out}")
            return 0

        if args.command == "validate":
            verdict = validate_trace(args.trace, strict=args.strict)
            for msg in verdict["warnings"]:
                print(f"warning: {msg}", file=sys.stderr)
            for msg in verdict["errors"]:
                print(f"error: {msg}", file=sys.stderr)
            status = "OK" if verdict["ok"] else "INVALID"
            print(
                f"{args.trace}: {status} — {verdict['events']} events, "
                f"{verdict['error_count']} errors, "
                f"{verdict['warning_count']} warnings"
            )
            return 0 if verdict["ok"] else 1
    except OSError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    return 2  # pragma: no cover - unreachable (subparser is required)


if __name__ == "__main__":
    raise SystemExit(main())
