"""Observability layer: structured tracing, metrics and run reports.

Three pieces (DESIGN.md §10):

* :mod:`repro.obs.bus` — the structured **trace bus**.  Subsystems emit
  typed events (``gr.block``, ``net.deliver``, ``rb.begin`` …) through
  cheap ``if kernel.obs is not None`` hooks; the default is *no bus at
  all*, so golden determinism digests and bench numbers are untouched
  when tracing is off.  Enable per machine with
  ``MachineConfig(trace=True)``.
* :mod:`repro.obs.metrics` — the **metrics registry**: counters, gauges
  and histograms snapshotted into every experiment's result envelope
  (``IslandGaResult.metrics`` / ``ParallelLsResult.metrics``) and
  dumpable as JSON.
* :mod:`repro.obs.report` — the **report CLI**,
  ``python -m repro.obs report <trace.jsonl>``, rendering per-node
  timelines, a blocking/rollback summary and a warp table.

:mod:`repro.obs.integration` runs one traced GA or Bayes trial and is
what the experiment runners' ``--trace``/``--metrics`` knobs use.  See
``docs/observability.md`` for the trace schema and a worked example.
"""

from repro.obs.bus import ObsEvent, TraceBus, read_jsonl
from repro.obs.metrics import MetricsRegistry, machine_metrics, percentile_from_samples

__all__ = [
    "ObsEvent",
    "TraceBus",
    "read_jsonl",
    "MetricsRegistry",
    "machine_metrics",
    "percentile_from_samples",
]
