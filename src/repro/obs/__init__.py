"""Observability layer: structured tracing, metrics and run reports.

Three pieces (DESIGN.md §10):

* :mod:`repro.obs.bus` — the structured **trace bus**.  Subsystems emit
  typed events (``gr.block``, ``net.deliver``, ``rb.begin`` …) through
  cheap ``if kernel.obs is not None`` hooks; the default is *no bus at
  all*, so golden determinism digests and bench numbers are untouched
  when tracing is off.  Enable per machine with
  ``MachineConfig(trace=True)``.
* :mod:`repro.obs.metrics` — the **metrics registry**: counters, gauges
  and histograms snapshotted into every experiment's result envelope
  (``IslandGaResult.metrics`` / ``ParallelLsResult.metrics``) and
  dumpable as JSON.
* :mod:`repro.obs.report` — the **report CLI**,
  ``python -m repro.obs report <trace.jsonl>``, rendering per-node
  timelines, a blocking/rollback summary and a warp table (``--json``
  for the machine-readable envelope).

On top of the flat trace sits the **causal layer** (DESIGN.md §11):

* :mod:`repro.obs.causal` — span builder (compute / Global_Read-wait /
  rollback spans + ``dsm.write → net.deliver → gr.unblock`` message
  lineage), per-node wall-time attribution, and the backward
  critical-path walk (``python -m repro.obs critical-path``).
* :mod:`repro.obs.diff` — cross-run trace diffing aligned by
  iteration (``python -m repro.obs diff A.jsonl B.jsonl``).
* :mod:`repro.obs.dashboard` — zero-dependency single-file HTML run
  dashboard (``python -m repro.obs dashboard``).
* :mod:`repro.obs.schema` — trace-schema validation
  (``python -m repro.obs validate``), the CI gate on trace artifacts.

:mod:`repro.obs.integration` runs one traced GA or Bayes trial and is
what the experiment runners' ``--trace``/``--metrics`` knobs use.  See
``docs/observability.md`` for the trace schema and a worked example.
"""

from repro.obs.bus import ObsEvent, TraceBus, read_jsonl
from repro.obs.causal import (
    SpanGraph,
    attribute,
    build_spans,
    critical_path,
    critical_path_report,
)
from repro.obs.metrics import MetricsRegistry, machine_metrics, percentile_from_samples

__all__ = [
    "ObsEvent",
    "TraceBus",
    "read_jsonl",
    "SpanGraph",
    "build_spans",
    "attribute",
    "critical_path",
    "critical_path_report",
    "MetricsRegistry",
    "machine_metrics",
    "percentile_from_samples",
]
