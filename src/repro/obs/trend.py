"""Perf-trajectory analyzer over the ``BENCH_*.json`` series.

The ROADMAP's standing instruction is to *bend the bench curve*, yet
nothing ever read the curve: BENCH_2..n accumulated at the repo root
and regressions (or flatness) were invisible unless a human opened two
JSON files side by side.  This module turns the series into a judgment:

* a per-key **sparkline table** (``python -m repro.obs trend``) showing
  every numeric metric's whole history at a glance;
* a **pct-change check** of the newest point against the most recent
  previous measurement of each key, classified by a direction registry
  (``*_per_sec`` up is good, ``*wall_s`` down is good, unknown keys are
  informational only);
* a ``--check`` **exit-code mode** wired into CI as the ``trend-gate``
  job, so a >threshold regression fails the build the way a digest
  mismatch already does.

Noise discipline: CI runs on a 1-core box where sub-50 ms timings are
dominated by scheduler jitter (``table1.wall_s`` historically flaps
between 0.0 and 0.015), so comparisons where both sides are below
``min_magnitude`` are skipped rather than gated.  Only the *latest*
transition gates — historical regressions are visible in the sparkline
but were either accepted or already fixed; re-failing on them forever
would make the gate cry wolf.  And because a single anomalously *fast*
point would otherwise poison the baseline (every representative
successor would read as a 25% "regression"), a key only regresses when
the latest value is beyond threshold against **every** measurement in
the recent envelope — the last three — while the displayed pct change
stays vs the immediately previous point.

Bench points can come from ``BENCH_*.json`` files at the repo root
(:func:`repro.bench.harness.load_trajectory`) and/or from bench
payloads archived in a :class:`repro.obs.store.RunStore` (the
``bench.json`` artifact ``python -m repro.bench --store`` writes).
"""

from __future__ import annotations

import json
import os
from typing import Any

from repro.util.envelope import make_envelope

#: schema tag of the :func:`trend_report` envelope
TREND_SCHEMA = "repro-obs-trend/1"

#: default regression threshold (fraction of the previous value)
DEFAULT_THRESHOLD = 0.25

#: comparisons where both sides are below this are scheduler noise
DEFAULT_MIN_MAGNITUDE = 0.05

_SPARK = "▁▂▃▄▅▆▇█"

#: (suffix, direction) — first match wins; direction "down" means lower
#: is better (times, overheads), "up" means higher is better (rates)
_DIRECTIONS: tuple[tuple[str, str], ...] = (
    ("_per_sec", "up"),
    ("per_s", "up"),
    ("speedup", "up"),
    ("overhead_ratio", "down"),
    ("o1_ratio", "down"),
    ("wall_s", "down"),
    ("_us", "down"),
    ("_s", "down"),
)


def direction_of(key: str) -> str | None:
    """``"up"``, ``"down"``, or None (informational) for a metric key."""
    for suffix, direction in _DIRECTIONS:
        if key.endswith(suffix):
            return direction
    return None


def flatten_payload(payload: dict[str, Any]) -> dict[str, float]:
    """Numeric leaves of one bench payload as dotted keys.

    ``micro.*`` and ``experiments.<name>.*`` are the interesting
    namespaces; booleans and provenance (env, unix_time, schema) are
    excluded — the trajectory is about measurements, not metadata.
    """
    out: dict[str, float] = {}

    def walk(prefix: str, obj: Any) -> None:
        if isinstance(obj, bool):
            return
        if isinstance(obj, (int, float)):
            out[prefix] = float(obj)
        elif isinstance(obj, dict):
            for k, v in sorted(obj.items()):
                walk(f"{prefix}.{k}" if prefix else str(k), v)

    walk("micro", payload.get("micro", {}))
    walk("experiments", payload.get("experiments", {}))
    return out


def load_points(
    root: str = ".", store_root: str | None = None
) -> list[tuple[str, dict[str, float]]]:
    """The bench trajectory as ``[(label, flat metrics), ...]``, oldest
    first: root ``BENCH_<n>.json`` files, then any ``bench.json``
    artifacts archived in the run store (in put order)."""
    from repro.bench.harness import load_trajectory

    points = [
        (f"BENCH_{n}", flatten_payload(payload))
        for n, payload in load_trajectory(root)
    ]
    if store_root is not None and os.path.isdir(store_root):
        from repro.obs.store import RunStore

        store = RunStore(store_root)
        for run in store.ls():
            if "bench.json" not in run["files"]:
                continue
            path = store.artifact(run["ref"], "bench.json")
            with open(path, "r", encoding="utf-8") as fh:
                points.append((f"store:{run['ref'][:8]}", flatten_payload(json.load(fh))))
    return points


def sparkline(values: list[float | None]) -> str:
    """Unicode mini-chart of a series; gaps render as spaces."""
    present = [v for v in values if v is not None]
    if not present:
        return ""
    lo, hi = min(present), max(present)
    span = hi - lo
    out = []
    for v in values:
        if v is None:
            out.append(" ")
        elif span <= 0:
            out.append(_SPARK[3])
        else:
            out.append(_SPARK[round((v - lo) / span * (len(_SPARK) - 1))])
    return "".join(out)


def analyze(
    points: list[tuple[str, dict[str, float]]],
    threshold: float = DEFAULT_THRESHOLD,
    min_magnitude: float = DEFAULT_MIN_MAGNITUDE,
) -> dict[str, Any]:
    """Per-key trajectory rows + the latest-transition verdicts.

    Each row: ``{key, direction, values, spark, last, prev, pct_change,
    verdict}`` where ``prev`` is the most recent measurement before the
    final point (series may have gaps — keys appear and disappear as
    the bench suite grows) and ``verdict`` is one of ``ok``,
    ``improved``, ``regressed``, ``info`` (no direction), ``noise``
    (below ``min_magnitude``) or ``new`` (no prior measurement).

    ``regressed`` requires the latest value to be beyond ``threshold``
    against *all* of the last three prior measurements, so one
    outlier-fast baseline point doesn't flag ordinary jitter;
    ``pct_change`` itself is always vs ``prev``.
    """
    keys: dict[str, None] = {}
    for _, metrics in points:
        for k in metrics:
            keys.setdefault(k)
    labels = [label for label, _ in points]
    rows = []
    regressions = []
    for key in sorted(keys):
        values = [metrics.get(key) for _, metrics in points]
        direction = direction_of(key)
        last = values[-1] if values else None
        prior = [v for v in values[:-1] if v is not None]
        prev = prior[-1] if prior else None
        pct = None
        if last is not None and prev not in (None, 0.0):
            pct = (last - prev) / abs(prev)
        if last is None or prev is None:
            verdict = "new"
        elif direction is None:
            verdict = "info"
        elif max(abs(last), abs(prev)) < min_magnitude:
            verdict = "noise"
        elif pct is None:
            verdict = "ok"
        else:
            def beyond(base: float) -> bool:
                p = (last - base) / abs(base)
                return p > threshold if direction == "down" else p < -threshold

            # regression must hold against the whole recent envelope
            # (last 3 measurements), not just one possibly-outlier point
            bases = [b for b in prior[-3:] if b != 0.0]
            worse = bool(bases) and all(beyond(b) for b in bases)
            better = pct < -threshold if direction == "down" else pct > threshold
            verdict = "regressed" if worse else ("improved" if better else "ok")
        row = {
            "key": key,
            "direction": direction,
            "values": values,
            "spark": sparkline(values),
            "last": last,
            "prev": prev,
            "pct_change": pct,
            "verdict": verdict,
        }
        rows.append(row)
        if verdict == "regressed":
            regressions.append(key)
    return {
        "labels": labels,
        "threshold": threshold,
        "min_magnitude": min_magnitude,
        "rows": rows,
        "regressions": regressions,
        "ok": not regressions,
    }


def trend_report(analysis: dict[str, Any]) -> dict[str, Any]:
    """Wrap an :func:`analyze` result in the ``repro-obs-trend/1``
    envelope."""
    return make_envelope(TREND_SCHEMA, analysis)


def render_trend(analysis: dict[str, Any], verbose: bool = False) -> str:
    """Text table of the trajectory.

    By default only gated rows (known direction, not noise) print;
    ``verbose`` includes informational and noisy keys too.
    """
    labels = analysis["labels"]
    lines = [
        f"Bench trajectory — {len(labels)} points "
        f"({labels[0]} → {labels[-1]}), "
        f"threshold ±{analysis['threshold']:.0%} on the latest transition"
        if labels
        else "Bench trajectory — no points"
    ]
    shown = 0
    for row in analysis["rows"]:
        if not verbose and row["verdict"] in ("info", "noise", "new"):
            continue
        shown += 1
        pct = row["pct_change"]
        pct_s = f"{pct:+8.1%}" if pct is not None else "       —"
        last = row["last"]
        last_s = f"{last:12.4g}" if last is not None else "           —"
        arrow = {"up": "↑good", "down": "↓good"}.get(row["direction"], "     ")
        mark = {
            "regressed": "REGRESSED",
            "improved": "improved",
            "ok": "",
            "noise": "(noise)",
            "info": "(info)",
            "new": "(new)",
        }[row["verdict"]]
        lines.append(
            f"  {row['spark']:>{max(8, len(labels))}}  {last_s} {pct_s}  "
            f"{arrow}  {row['key']}  {mark}".rstrip()
        )
    if shown == 0:
        lines.append("  (no gated keys; rerun with --verbose for all rows)")
    if analysis["regressions"]:
        lines.append("")
        lines.append(
            f"{len(analysis['regressions'])} regression(s) beyond "
            f"{analysis['threshold']:.0%}: " + ", ".join(analysis["regressions"])
        )
    else:
        lines.append("")
        lines.append("no regressions beyond threshold on the latest transition")
    return "\n".join(lines)
