"""Trace-schema validation for JSONL traces (``repro.obs validate``).

The trace format is append-only JSONL with a ``trace.meta`` trailer
(:meth:`repro.obs.bus.TraceBus.write_jsonl`); this module checks a file
against the documented event taxonomy (docs/observability.md) so CI can
gate artifact-producing jobs on well-formed traces and consumers
(differ, span builder, dashboard) can trust field types.

Checks, in order per file:

1. every line parses as a JSON object with ``t`` (number), ``kind``
   (string) and ``node`` (integer);
2. event timestamps are monotone non-decreasing (the bus stamps the
   kernel clock, which never runs backward);
3. known kinds carry their required fields with the right JSON types
   (extra fields are allowed — the taxonomy is additive by design;
   unknown kinds are warnings unless ``strict``);
4. the final line is the ``trace.meta`` trailer and its ``events``
   count matches the number of event lines written.

Lineage fields added for the causal layer (``ref`` on ``net.deliver``
and ``gr.unblock``, ``cause``/``writer``/``version`` on ``rb.begin``,
``op`` on ``node.compute``) are optional: traces recorded before they
existed still validate.
"""

from __future__ import annotations

import json
from typing import Any

#: max error/warning entries kept verbatim (counts are always exact)
MAX_DETAIL = 50

_NUM = (int, float)

#: required (name -> type) and optional ("name?" -> type) fields by kind;
#: the "fault." prefix matches every injected-fault event kind
TRACE_SCHEMA: dict[str, dict[str, type | tuple[type, ...]]] = {
    "proc.spawn": {"pid": int, "name": str},
    "proc.wake": {"pid": int, "name": str, "signal": str},
    "proc.block": {"pid": int, "name": str, "signal": str},
    "proc.done": {"pid": int, "name": str},
    "proc.fail": {"pid": int, "name": str, "error": str},
    "net.deliver": {
        "src": int, "frame_kind": str, "size": int, "enq": _NUM, "ref?": str,
        # switched-fabric annotations (repro.network.switched); shared-
        # Ethernet deliveries don't carry them
        "fabric?": str, "hops?": int, "bcast?": bool,
    },
    "node.compute": {"baseline": _NUM, "cost": _NUM, "op?": str},
    "dsm.write": {"locn": str, "iter": int},
    "gr.hit": {"locn": str, "curr_iter": int, "age": int, "staleness": int},
    "gr.block": {"locn": str, "curr_iter": int, "age": int},
    "gr.unblock": {
        "locn": str, "curr_iter": int, "age": int, "waited": _NUM,
        "staleness": int, "ref?": str, "writer?": int,
    },
    "rb.begin": {
        "input": int, "iter": int, "depth": int,
        "cause?": str, "writer?": int, "version?": int,
    },
    "rb.end": {"input": int, "iter": int, "depth": int, "corrections": int},
    "bn.commit": {"runs": int, "total": int},
    "gvt.advance": {"floor": int},
    "fault.": {"amount?": _NUM, "src?": int, "frame_kind?": str},
    # bounded-lag parallel kernel (repro.sim.parallel): one event per
    # shard per floor epoch in a merged trace, attributing wall-clock
    # synchronization waits to the window the shard was in
    "par.window": {
        "shard": int, "epoch?": int, "window?": int,
        "wall_wait_s?": _NUM, "waits?": int,
    },
}


def _check_fields(kind: str, obj: dict, line_no: int, errors: list[str]) -> None:
    spec = TRACE_SCHEMA.get(kind)
    if spec is None and kind.startswith("fault."):
        spec = TRACE_SCHEMA["fault."]
    if spec is None:
        return
    for name, typ in spec.items():
        optional = name.endswith("?")
        key = name.rstrip("?")
        if key not in obj:
            if not optional:
                errors.append(f"line {line_no}: {kind} missing field {key!r}")
            continue
        val = obj[key]
        # JSON has no int/float distinction on the wire for whole floats,
        # but bool is an int subclass and only valid where declared bool
        if typ is bool:
            if not isinstance(val, bool):
                errors.append(
                    f"line {line_no}: {kind}.{key} has type "
                    f"{type(val).__name__}, expected bool"
                )
            continue
        if isinstance(val, bool) or not isinstance(val, typ):
            errors.append(
                f"line {line_no}: {kind}.{key} has type "
                f"{type(val).__name__}, expected {typ}"
            )


def validate_lines(lines: list[str], strict: bool = False) -> dict[str, Any]:
    """Validate trace lines; returns a verdict dict (never raises).

    ``{"ok": bool, "lines", "events", "errors": [...], "warnings":
    [...], "error_count", "warning_count", "meta": {...}|None}`` —
    ``errors``/``warnings`` keep at most :data:`MAX_DETAIL` entries
    each, the counts are exact.
    """
    errors: list[str] = []
    warnings: list[str] = []
    n_err = n_warn = 0

    def err(msg: str) -> None:
        nonlocal n_err
        n_err += 1
        if len(errors) < MAX_DETAIL:
            errors.append(msg)

    def warn(msg: str) -> None:
        nonlocal n_warn
        n_warn += 1
        if len(warnings) < MAX_DETAIL:
            warnings.append(msg)

    events = 0
    prev_t = float("-inf")
    meta: dict | None = None
    known = set(TRACE_SCHEMA)
    for i, line in enumerate(lines, start=1):
        if not line.strip():
            err(f"line {i}: blank line")
            continue
        try:
            obj = json.loads(line)
        except json.JSONDecodeError as exc:
            err(f"line {i}: invalid JSON ({exc.msg})")
            continue
        if not isinstance(obj, dict):
            err(f"line {i}: not a JSON object")
            continue
        kind = obj.get("kind")
        if not isinstance(kind, str):
            err(f"line {i}: missing/non-string 'kind'")
            continue
        if kind == "trace.meta":
            if i != len(lines):
                err(f"line {i}: trace.meta before end of file")
            meta = obj
            continue
        events += 1
        t = obj.get("t")
        if isinstance(t, bool) or not isinstance(t, _NUM):
            err(f"line {i}: missing/non-numeric 't'")
        else:
            if t < prev_t:
                err(f"line {i}: time goes backward ({t} after {prev_t})")
            prev_t = float(t)
        node = obj.get("node")
        if isinstance(node, bool) or not isinstance(node, int):
            err(f"line {i}: missing/non-integer 'node'")
        if kind not in known and not kind.startswith("fault."):
            (err if strict else warn)(f"line {i}: unknown event kind {kind!r}")
        else:
            field_errors: list[str] = []
            _check_fields(kind, obj, i, field_errors)
            for msg in field_errors:
                err(msg)

    if meta is None:
        err("missing trace.meta trailer on the last line")
    else:
        declared = meta.get("events")
        if declared != events:
            err(
                f"trace.meta declares {declared} events but the file "
                f"holds {events}"
            )
        dropped = meta.get("events_dropped")
        if isinstance(dropped, bool) or not isinstance(dropped, int) or dropped < 0:
            err("trace.meta 'events_dropped' missing or not a non-negative int")

    return {
        "ok": n_err == 0,
        "lines": len(lines),
        "events": events,
        "errors": errors,
        "warnings": warnings,
        "error_count": n_err,
        "warning_count": n_warn,
        "meta": meta,
    }


def validate_trace(path: str, strict: bool = False) -> dict[str, Any]:
    """Validate a trace on disk (see :func:`validate_lines`).

    ``path`` may be a plain JSONL file, the base path of a (possibly
    rotated) gzip trace, or a directory of parts — the same forms
    :func:`repro.obs.bus.read_jsonl` accepts.
    """
    from repro.obs.bus import iter_trace_lines

    lines = [line.rstrip("\n") for line in iter_trace_lines(path)]
    return validate_lines(lines, strict=strict)
