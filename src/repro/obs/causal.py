"""Causal span graphs and critical-path attribution over flat traces.

The trace bus (:mod:`repro.obs.bus`) emits *flat* JSONL events; this
module lifts them into a **causal span graph** and walks it to explain a
run's completion time — the analysis layer the paper's claims need
(blocking vs staleness vs rollback, §5) in the style of Lubachevsky &
Weiss's rollback-cost accounting.

Three stages, all pure functions of the event list:

1. :func:`build_spans` — stitch events into :class:`Span` intervals:
   ``node.compute`` compute spans, ``gr.block``/``gr.unblock`` wait
   spans, ``rb.begin``/``rb.end`` rollback spans (with cascade parent
   links via correction versions), plus the ``dsm.write →
   net.deliver → gr.unblock`` message lineage joined on the
   content-addressed ``ref`` (``"locn@iter"``) the DSM stamps on
   updates.  Truncated or dropped traces degrade to *partial* spans —
   the builder never raises on missing halves.
2. :func:`attribute` — per-node wall-time attribution: a priority sweep
   (gr-wait > rollback > compute) over each node's active window;
   whatever remains inside the window is **network** time (PVM
   send/recv overheads and message handling carry no events of their
   own, and an application process that is neither computing, blocked
   in ``Global_Read`` nor rolling back is communicating).  Note the
   current cost model charges rollback *redo* CPU inside the
   correction-application drain, so rollback spans are zero-width in
   simulated time: the rollback bucket reports cascade counts and
   depths, while redo CPU lands in the network/messaging remainder.
3. :func:`critical_path` — walk backward from run completion: a wait
   span whose lineage resolves jumps to the producing write on the
   writer node (the wait *decomposes* into upstream compute + network
   transit); unresolved waits stay attributed as ``gr-blocking``.

:func:`critical_path_report` bundles all three into the
``repro-obs-critical-path/1`` JSON artifact behind
``python -m repro.obs critical-path``.
"""

from __future__ import annotations

from bisect import bisect_left
from dataclasses import dataclass, field
from typing import Any, Iterable

from repro.obs.bus import ObsEvent

#: schema tag of the :func:`critical_path_report` artifact
CRITICAL_PATH_SCHEMA = "repro-obs-critical-path/1"

#: attribution bucket names, in display order
BUCKETS = ("compute", "gr_blocking", "network", "rollback")

_EPS = 1e-12


@dataclass
class Span:
    """One causal interval on one node.

    ``kind`` is ``"compute"``, ``"gr-wait"`` or ``"rollback"``;
    ``detail`` carries kind-specific fields (``op``/``locn``/``ref``/
    ``writer``/``cause``/``depth``…).  ``partial`` marks spans
    reconstructed from one half of a begin/end pair (truncated traces).
    ``parent`` is the index (into :attr:`SpanGraph.spans`) of the causal
    parent span, where one could be resolved.
    """

    kind: str
    node: int
    t0: float
    t1: float
    detail: dict = field(default_factory=dict)
    partial: bool = False
    parent: int | None = None

    @property
    def duration(self) -> float:
        """Span length in simulated seconds (>= 0)."""
        return max(0.0, self.t1 - self.t0)


@dataclass
class SpanGraph:
    """The stitched causal graph of one trace.

    ``writes`` maps a lineage ref (``"locn@iter"``) to its producing
    ``(node, time)``; ``deliveries`` maps ``(ref, dst)`` to the last
    frame-delivery time.  ``partial`` is True when any begin/end pair
    was missing its other half (bounded-buffer truncation).
    """

    spans: list[Span] = field(default_factory=list)
    writes: dict[str, tuple[int, float]] = field(default_factory=dict)
    deliveries: dict[tuple[str, int], float] = field(default_factory=dict)
    node_window: dict[int, tuple[float, float]] = field(default_factory=dict)
    t_end: float = 0.0
    events: int = 0
    unresolved_waits: int = 0
    partial: bool = False
    gr_ages: dict[int, float] = field(default_factory=dict)

    @property
    def nodes(self) -> list[int]:
        """All nodes with any activity, sorted."""
        return sorted(self.node_window)

    def spans_of(self, node: int, kind: str | None = None) -> list[Span]:
        """Spans on ``node`` (optionally one kind), sorted by start time."""
        out = [
            s for s in self.spans
            if s.node == node and (kind is None or s.kind == kind)
        ]
        out.sort(key=lambda s: (s.t0, s.t1))
        return out


def build_spans(events: Iterable[ObsEvent]) -> SpanGraph:
    """Lift a flat event stream into a :class:`SpanGraph`.

    Tolerant of truncated traces by construction: an ``gr.unblock``
    without its ``gr.block`` rebuilds the wait from its ``waited``
    stamp; a ``gr.block``/``rb.begin`` whose end was dropped becomes a
    partial span reaching the end of the trace.  Never raises on
    incomplete pairs.
    """
    g = SpanGraph()
    open_waits: dict[tuple[int, str], list[float]] = {}
    open_rollbacks: dict[tuple[int, int, int], list[tuple[float, dict]]] = {}
    # (writer_node, version-carrying rollback span idx) resolution table:
    # rb.end on the writer that *sent* corrections, by node, in time order
    corr_sources: dict[int, list[tuple[float, int]]] = {}

    for e in events:
        g.events += 1
        t = e.time
        if t > g.t_end:
            g.t_end = t
        node = e.node
        if node >= 0:
            w = g.node_window.get(node)
            g.node_window[node] = (
                (t, t) if w is None else (min(w[0], t), max(w[1], t))
            )
        f = e.fields
        kind = e.kind

        if kind == "node.compute":
            cost = float(f.get("cost", 0.0))
            detail = {"op": f["op"]} if "op" in f else {}
            g.spans.append(Span("compute", node, t, t + cost, detail))
            if t + cost > g.t_end:
                g.t_end = t + cost
        elif kind == "dsm.write":
            ref = f"{f.get('locn')}@{f.get('iter')}"
            g.writes.setdefault(ref, (node, t))
        elif kind == "net.deliver":
            ref = f.get("ref")
            if ref is not None:
                key = (ref, node)
                prev = g.deliveries.get(key)
                if prev is None or t > prev:
                    g.deliveries[key] = t
        elif kind == "gr.block":
            open_waits.setdefault((node, str(f.get("locn"))), []).append(t)
        elif kind == "gr.unblock":
            locn = str(f.get("locn"))
            stack = open_waits.get((node, locn))
            waited = float(f.get("waited", 0.0))
            if stack:
                t0 = stack.pop()
            else:
                # block event dropped: the unblock's own stamp suffices
                t0 = t - waited
            detail = {"locn": locn}
            for k in ("ref", "writer", "curr_iter", "age", "staleness"):
                if k in f:
                    detail[k] = f[k]
            g.spans.append(Span("gr-wait", node, t0, t, detail,
                                partial="ref" not in f))
            if "ref" not in f:
                g.unresolved_waits += 1
            if "age" in f:
                a = int(f["age"])
                g.gr_ages[a] = g.gr_ages.get(a, 0.0) + waited
        elif kind == "gr.hit" and "age" in f:
            g.gr_ages.setdefault(int(f["age"]), 0.0)
        elif kind == "rb.begin":
            key = (node, int(f.get("input", -1)), int(f.get("iter", -1)))
            detail = {
                k: f[k] for k in ("input", "iter", "depth", "cause",
                                  "writer", "version") if k in f
            }
            open_rollbacks.setdefault(key, []).append((t, detail))
        elif kind == "rb.end":
            key = (node, int(f.get("input", -1)), int(f.get("iter", -1)))
            stack = open_rollbacks.get(key)
            if stack:
                t0, detail = stack.pop()
            else:
                t0, detail = t, {"input": f.get("input"), "iter": f.get("iter")}
            detail = dict(detail)
            detail["corrections"] = f.get("corrections", 0)
            g.spans.append(Span("rollback", node, t0, t, detail,
                                partial=not stack and t0 == t and "cause" not in detail))
            idx = len(g.spans) - 1
            if int(f.get("corrections", 0)) > 0:
                corr_sources.setdefault(node, []).append((t, idx))

    # dangling halves → partial spans to the end of the trace
    for (node, locn), stack in open_waits.items():
        for t0 in stack:
            g.spans.append(
                Span("gr-wait", node, t0, g.t_end, {"locn": locn}, partial=True)
            )
            g.unresolved_waits += 1
            g.partial = True
    for (node, _u, _t), stack in open_rollbacks.items():
        for t0, detail in stack:
            g.spans.append(Span("rollback", node, t0, t0, detail, partial=True))
            g.partial = True

    _link_rollback_parents(g, corr_sources)
    return g


def _link_rollback_parents(
    g: SpanGraph, corr_sources: dict[int, list[tuple[float, int]]]
) -> None:
    """Attach cascade parents: a correction-caused rollback's parent is
    the latest correction-*emitting* rollback on the writer that had
    already finished.  Best-effort — unresolved parents stay ``None``."""
    for sources in corr_sources.values():
        sources.sort()
    for i, s in enumerate(g.spans):
        if s.kind != "rollback" or s.detail.get("cause") != "correction":
            continue
        writer = s.detail.get("writer", -1)
        sources = corr_sources.get(writer)
        if not sources:
            continue
        times = [t for t, _ in sources]
        j = bisect_left(times, s.t0 + _EPS) - 1
        if j >= 0:
            s.parent = sources[j][1]


_PRIORITY = {"gr-wait": 3, "rollback": 2, "compute": 1}
_PRI_BUCKET = {3: "gr_blocking", 2: "rollback", 1: "compute"}


def node_segments(
    window: tuple[float, float], spans: list[Span]
) -> list[tuple[float, float, str]]:
    """Partition one node's window into bucket-labelled segments.

    A priority sweep (gr-wait > rollback > compute) resolves overlaps
    (a node nominally cannot be blocked and computing at once, but
    partial spans from truncated traces may overlap); uncovered window
    time is the network/messaging remainder.  Returns contiguous
    ``(t0, t1, bucket)`` tiles covering exactly ``[w0, w1]``.
    """
    w0, w1 = window
    if w1 <= w0:
        return []
    marks: list[tuple[float, int, int]] = []
    for s in spans:
        pri = _PRIORITY.get(s.kind)
        if pri is None:
            continue
        a, b = max(s.t0, w0), min(s.t1, w1)
        if b > a:
            marks.append((a, 1, pri))
            marks.append((b, -1, pri))
    marks.sort()
    counts = [0, 0, 0, 0]
    segments: list[tuple[float, float, str]] = []

    def push(t0: float, t1: float) -> None:
        active = max((p for p in (1, 2, 3) if counts[p] > 0), default=0)
        bucket = _PRI_BUCKET.get(active, "network")
        if segments and segments[-1][2] == bucket and segments[-1][1] == t0:
            segments[-1] = (segments[-1][0], t1, bucket)
        else:
            segments.append((t0, t1, bucket))

    prev = w0
    i = 0
    n = len(marks)
    while i < n:
        t = marks[i][0]
        if t > prev:
            push(prev, t)
            prev = t
        while i < n and marks[i][0] == t:
            counts[marks[i][2]] += marks[i][1]
            i += 1
    if w1 > prev:
        push(prev, w1)
    return segments


def _sweep(window: tuple[float, float], spans: list[Span]) -> dict[str, float]:
    """Seconds per bucket over one node's window (see :func:`node_segments`)."""
    out = {b: 0.0 for b in BUCKETS}
    for t0, t1, bucket in node_segments(window, spans):
        out[bucket] += t1 - t0
    return out


def attribute(g: SpanGraph) -> dict[str, Any]:
    """Per-node and total wall-time attribution for one trace.

    Returns ``per_node`` buckets ({compute, gr_blocking, network,
    rollback, idle}), bucket ``totals``, the minimum per-node
    ``attributed_fraction`` (the acceptance metric: the four buckets
    over the run's completion time) and blocking seconds per observed
    ``age`` setting.
    """
    per_node: dict[int, dict[str, float]] = {}
    t_end = g.t_end
    for node in g.nodes:
        window = g.node_window[node]
        spans = [s for s in g.spans if s.node == node]
        buckets = _sweep(window, spans)
        idle = max(0.0, window[0]) + max(0.0, t_end - window[1])
        covered = sum(buckets.values())
        frac = (covered / t_end) if t_end > 0 else 1.0
        per_node[node] = {
            **buckets,
            "idle": idle,
            "window": [window[0], window[1]],
            "attributed_fraction": frac,
        }
    totals = {b: sum(pn[b] for pn in per_node.values()) for b in BUCKETS}
    totals["idle"] = sum(pn["idle"] for pn in per_node.values())
    fracs = [pn["attributed_fraction"] for pn in per_node.values()]
    return {
        "per_node": per_node,
        "totals": totals,
        "min_attributed_fraction": min(fracs) if fracs else 1.0,
        "blocking_by_age": {str(a): g.gr_ages[a] for a in sorted(g.gr_ages)},
    }


def critical_path(g: SpanGraph, max_segments: int = 100_000) -> dict[str, Any]:
    """Walk the span graph backward from run completion.

    From the node that finishes last, walk time backward: a covering
    compute/rollback span contributes its own kind; a covering wait
    span with resolved lineage *jumps* to the producing write on the
    writer node, contributing the ``[write, unblock]`` interval as
    network time (transit + residual wait); unresolved waits contribute
    ``gr-blocking``; uncovered gaps are network/messaging overhead.
    Segments are returned in chronological order and tile ``[0,
    t_end]`` exactly, so ``coverage`` is 1.0 unless the walk was capped.
    """
    t_end = g.t_end
    empty = {
        "segments": [], "by_kind": {}, "by_node": {},
        "coverage": 0.0, "t_end": t_end, "start_node": None,
    }
    if t_end <= 0 or not g.node_window:
        return empty

    # per-node walkable spans, sorted by start; zero-width spans are
    # never "covering" and only matter for attribution, so drop them
    walk: dict[int, list[Span]] = {}
    starts: dict[int, list[float]] = {}
    for node in g.nodes:
        spans = [
            s for s in g.spans
            if s.node == node and s.duration > _EPS
            and s.kind in ("compute", "gr-wait", "rollback")
        ]
        spans.sort(key=lambda s: (s.t0, s.t1))
        walk[node] = spans
        starts[node] = [s.t0 for s in spans]

    node = max(
        g.node_window,
        key=lambda n: max([g.node_window[n][1]] + [s.t1 for s in walk[n]]),
    )
    start_node = node
    t = t_end
    segments: list[dict[str, Any]] = []

    def emit(node: int, kind: str, t0: float, t1: float, **detail: Any) -> None:
        if t1 - t0 > _EPS:
            segments.append(
                {"node": node, "kind": kind, "t0": t0, "t1": t1,
                 "dur": t1 - t0, **detail}
            )

    while t > _EPS and len(segments) < max_segments:
        spans = walk.get(node, [])
        i = bisect_left(starts.get(node, []), t) - 1
        s = spans[i] if i >= 0 else None
        if s is None:
            emit(node, "network", 0.0, t)
            break
        if s.t1 < t - _EPS:
            # gap between spans: communication / messaging overhead
            emit(node, "network", s.t1, t)
            t = s.t1
            continue
        if s.kind in ("compute", "rollback"):
            emit(node, s.kind, s.t0, t, **{
                k: s.detail[k] for k in ("op", "cause", "depth") if k in s.detail
            })
            t = s.t0
            continue
        # gr-wait: try to jump along the resolved lineage
        ref = s.detail.get("ref")
        src = g.writes.get(ref) if ref is not None else None
        if src is not None and src[0] != node and src[1] < t - _EPS:
            w_node, w_t = src
            emit(node, "network", w_t, t, ref=ref, src=w_node,
                 locn=s.detail.get("locn"))
            node, t = w_node, w_t
        else:
            emit(node, "gr-blocking", s.t0, t, locn=s.detail.get("locn"),
                 unresolved=True)
            t = s.t0

    segments.reverse()
    by_kind: dict[str, float] = {}
    by_node: dict[str, float] = {}
    for seg in segments:
        by_kind[seg["kind"]] = by_kind.get(seg["kind"], 0.0) + seg["dur"]
        by_node[str(seg["node"])] = by_node.get(str(seg["node"]), 0.0) + seg["dur"]
    return {
        "segments": segments,
        "by_kind": by_kind,
        "by_node": by_node,
        "coverage": (sum(by_kind.values()) / t_end) if t_end > 0 else 0.0,
        "t_end": t_end,
        "start_node": start_node,
    }


def critical_path_report(events: Iterable[ObsEvent]) -> dict[str, Any]:
    """The full ``repro-obs-critical-path/1`` artifact for one trace."""
    g = build_spans(events)
    return {
        "schema": CRITICAL_PATH_SCHEMA,
        "t_end": g.t_end,
        "events": g.events,
        "spans": len(g.spans),
        "partial": g.partial,
        "unresolved_waits": g.unresolved_waits,
        "attribution": attribute(g),
        "critical_path": critical_path(g),
    }
