"""Run one *traced* GA or Bayes trial and export its artifacts.

The experiment drivers fan dozens of replicas out over worker processes;
shipping a full event trace back from every worker would drown the run.
The ``--trace``/``--metrics`` knobs instead run **one representative
traced trial** after the experiment proper — same scale, same machine
configuration, fixed seed — and export its JSONL trace and metrics
snapshot.  That trial is what ``python -m repro.obs report`` renders.

The bus is recovered through the run functions' ``instrument(dsm)``
hook (the same attachment point the race classifier uses): the machine
is built inside :func:`repro.ga.island.run_island_ga` /
:func:`repro.bayes.parallel.run_parallel_logic_sampling`, so the hook's
``dsm.vm.kernel.obs`` is the only public path to the bus.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, replace

from repro.core.coherence import CoherenceMode
from repro.experiments.config import Scale, current_scale
from repro.faults.plan import FaultPlan
from repro.obs.bus import TraceBus


@dataclass
class TracedRun:
    """One traced trial: its result object, trace bus and metrics dict."""

    app: str  # "ga" | "bayes"
    result: object
    bus: TraceBus
    metrics: dict


def traced_ga_run(
    scale: Scale | None = None,
    n_demes: int = 4,
    load_bps: float = 0.0,
    faults: FaultPlan | None = None,
    seed: int = 0,
    age: int | None = None,
    fid: int | None = None,
    n_generations: int | None = None,
) -> TracedRun:
    """One partially asynchronous island-GA run with the trace bus on.

    Defaults mirror the figure runs: the scale's first function, its
    largest age (the paper's best-performing region), ``measure_warp``
    on, and optional background load / fault plan pass-through.
    """
    from repro.experiments.speedup import machine_for
    from repro.ga.functions import get_function
    from repro.ga.island import IslandGaConfig, run_island_ga

    scale = scale or current_scale()
    mcfg = replace(
        machine_for(scale, n_demes, seed, load_bps, faults), trace=True
    )
    holder: dict = {}
    result = run_island_ga(
        IslandGaConfig(
            fn=get_function(fid if fid is not None else scale.ga_functions[0]),
            n_demes=n_demes,
            mode=CoherenceMode.NON_STRICT,
            age=age if age is not None else scale.ages[-1],
            n_generations=n_generations or scale.ga_generations,
            seed=seed,
            machine=mcfg,
        ),
        instrument=lambda dsm: holder.setdefault("dsm", dsm),
    )
    bus = holder["dsm"].vm.kernel.obs
    return TracedRun(app="ga", result=result, bus=bus, metrics=result.metrics)


def traced_bayes_run(
    scale: Scale | None = None,
    network: str = "Hailfinder",
    n_procs: int = 2,
    faults: FaultPlan | None = None,
    seed: int = 7,
    age: int | None = None,
) -> TracedRun:
    """One partially asynchronous Bayes-inference run with tracing on."""
    from repro.bayes.parallel import ParallelLsConfig, run_parallel_logic_sampling
    from repro.experiments.speedup import machine_for
    from repro.experiments.table2 import build_network, pick_query

    scale = scale or current_scale()
    net = build_network(network)
    mcfg = replace(machine_for(scale, n_procs, seed, 0.0, faults), trace=True)
    holder: dict = {}
    result = run_parallel_logic_sampling(
        ParallelLsConfig(
            net=net,
            query=pick_query(net, seed=0),
            n_procs=n_procs,
            mode=CoherenceMode.NON_STRICT,
            age=age if age is not None else scale.ages[-1],
            seed=seed,
            machine=mcfg,
            max_iterations=scale.bn_max_iterations,
        ),
        instrument=lambda dsm: holder.setdefault("dsm", dsm),
    )
    bus = holder["dsm"].vm.kernel.obs
    return TracedRun(app="bayes", result=result, bus=bus, metrics=result.metrics)


def write_artifacts(
    run: TracedRun,
    trace_path: str | None = None,
    metrics_path: str | None = None,
) -> dict:
    """Write the requested artifact files; returns {kind: path, ...}."""
    written: dict = {}
    if trace_path:
        n = run.bus.write_jsonl(trace_path)
        written["trace"] = {"path": trace_path, "events": n}
    if metrics_path:
        with open(metrics_path, "w", encoding="utf-8") as fh:
            json.dump(run.metrics, fh, sort_keys=True, indent=2)
            fh.write("\n")
        written["metrics"] = {"path": metrics_path}
    return written


def trace_experiment(
    app: str,
    scale: Scale | None,
    trace_path: str | None,
    metrics_path: str | None,
    load_bps: float = 0.0,
    n_nodes: int = 4,
    faults: FaultPlan | None = None,
) -> TracedRun | None:
    """The experiment drivers' ``--trace``/``--metrics`` back end.

    Runs one traced ``app`` trial (``"ga"`` or ``"bayes"``) matching the
    experiment's machine shape, writes the requested artifacts and
    prints where they landed.  No-op returning None when neither path is
    given.
    """
    if not trace_path and not metrics_path:
        return None
    if app == "ga":
        run = traced_ga_run(
            scale, n_demes=n_nodes, load_bps=load_bps, faults=faults
        )
    elif app == "bayes":
        run = traced_bayes_run(scale, n_procs=n_nodes, faults=faults)
    else:
        raise ValueError(f"unknown traced app {app!r}")
    written = write_artifacts(run, trace_path, metrics_path)
    if "trace" in written:
        print(
            f"trace: {written['trace']['events']} events -> "
            f"{written['trace']['path']}  "
            f"(render with: python -m repro.obs report {written['trace']['path']})"
        )
    if "metrics" in written:
        print(f"metrics snapshot -> {written['metrics']['path']}")
    return run
