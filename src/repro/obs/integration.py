"""Run one *traced* GA or Bayes trial and export its artifacts.

The experiment drivers fan dozens of replicas out over worker processes;
shipping a full event trace back from every worker would drown the run.
The ``--trace``/``--metrics`` knobs instead run **one representative
traced trial** after the experiment proper — same scale, same machine
configuration, fixed seed — and export its JSONL trace and metrics
snapshot.  That trial is what ``python -m repro.obs report`` renders.

The bus is recovered through the run functions' ``instrument(dsm)``
hook (the same attachment point the race classifier uses): the machine
is built inside :func:`repro.ga.island.run_island_ga` /
:func:`repro.bayes.parallel.run_parallel_logic_sampling`, so the hook's
``dsm.vm.kernel.obs`` is the only public path to the bus.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field, replace

from repro.core.coherence import CoherenceMode
from repro.experiments.config import Scale, current_scale
from repro.faults.plan import FaultPlan
from repro.obs.bus import TraceBus


@dataclass
class TracedRun:
    """One traced trial: its result object, trace bus and metrics dict."""

    app: str  # "ga" | "bayes"
    result: object
    bus: TraceBus
    metrics: dict
    #: ``repro-obs-prof/1`` envelope when the trial was run with
    #: ``profile=True`` (host-time section profiler), else None
    profile: dict | None = None
    #: provenance recorded into the run store's manifest meta
    meta: dict = field(default_factory=dict)


def _profiler(app: str):
    """Activate an ambient :class:`HostProfiler` for one traced trial."""
    from repro.obs.prof import HostProfiler, activate

    prof = HostProfiler()
    prof.meta["app"] = app
    return activate(prof)


def _finish_profile(prof) -> dict:
    """Stop the trial profiler and bundle its envelope."""
    from repro.obs.prof import deactivate, profile_report

    deactivate()
    return profile_report(prof.snapshot(), [], meta=dict(prof.meta))


def traced_ga_run(
    scale: Scale | None = None,
    n_demes: int = 4,
    load_bps: float = 0.0,
    faults: FaultPlan | None = None,
    seed: int = 0,
    age: int | None = None,
    fid: int | None = None,
    n_generations: int | None = None,
    profile: bool = False,
) -> TracedRun:
    """One partially asynchronous island-GA run with the trace bus on.

    Defaults mirror the figure runs: the scale's first function, its
    largest age (the paper's best-performing region), ``measure_warp``
    on, and optional background load / fault plan pass-through.
    ``profile=True`` additionally runs the host-time section profiler
    (determinism-neutral) and attaches its envelope.
    """
    from repro.experiments.speedup import machine_for
    from repro.ga.functions import get_function
    from repro.ga.island import IslandGaConfig, run_island_ga

    scale = scale or current_scale()
    mcfg = replace(
        machine_for(scale, n_demes, seed, load_bps, faults), trace=True
    )
    holder: dict = {}
    prof = _profiler("ga") if profile else None

    def hook(dsm) -> None:
        holder.setdefault("dsm", dsm)
        if prof is not None:
            dsm.vm.kernel.prof = prof

    try:
        result = run_island_ga(
            IslandGaConfig(
                fn=get_function(
                    fid if fid is not None else scale.ga_functions[0]
                ),
                n_demes=n_demes,
                mode=CoherenceMode.NON_STRICT,
                age=age if age is not None else scale.ages[-1],
                n_generations=n_generations or scale.ga_generations,
                seed=seed,
                machine=mcfg,
            ),
            instrument=hook,
        )
    finally:
        env = _finish_profile(prof) if prof is not None else None
    bus = holder["dsm"].vm.kernel.obs
    return TracedRun(
        app="ga", result=result, bus=bus, metrics=result.metrics,
        profile=env,
        meta={"app": "ga", "n_nodes": n_demes, "seed": seed},
    )


def traced_bayes_run(
    scale: Scale | None = None,
    network: str = "Hailfinder",
    n_procs: int = 2,
    faults: FaultPlan | None = None,
    seed: int = 7,
    age: int | None = None,
    profile: bool = False,
) -> TracedRun:
    """One partially asynchronous Bayes-inference run with tracing on."""
    from repro.bayes.parallel import ParallelLsConfig, run_parallel_logic_sampling
    from repro.experiments.speedup import machine_for
    from repro.experiments.table2 import build_network, pick_query

    scale = scale or current_scale()
    net = build_network(network)
    mcfg = replace(machine_for(scale, n_procs, seed, 0.0, faults), trace=True)
    holder: dict = {}
    prof = _profiler("bayes") if profile else None

    def hook(dsm) -> None:
        holder.setdefault("dsm", dsm)
        if prof is not None:
            dsm.vm.kernel.prof = prof

    try:
        result = run_parallel_logic_sampling(
            ParallelLsConfig(
                net=net,
                query=pick_query(net, seed=0),
                n_procs=n_procs,
                mode=CoherenceMode.NON_STRICT,
                age=age if age is not None else scale.ages[-1],
                seed=seed,
                machine=mcfg,
                max_iterations=scale.bn_max_iterations,
            ),
            instrument=hook,
        )
    finally:
        env = _finish_profile(prof) if prof is not None else None
    bus = holder["dsm"].vm.kernel.obs
    return TracedRun(
        app="bayes", result=result, bus=bus, metrics=result.metrics,
        profile=env,
        meta={"app": "bayes", "n_nodes": n_procs, "seed": seed},
    )


def write_artifacts(
    run: TracedRun,
    trace_path: str | None = None,
    metrics_path: str | None = None,
    profile_path: str | None = None,
) -> dict:
    """Write the requested artifact files; returns {kind: path, ...}."""
    written: dict = {}
    if trace_path:
        n = run.bus.write_jsonl(trace_path)
        written["trace"] = {"path": trace_path, "events": n}
    if metrics_path:
        with open(metrics_path, "w", encoding="utf-8") as fh:
            json.dump(run.metrics, fh, sort_keys=True, indent=2)
            fh.write("\n")
        written["metrics"] = {"path": metrics_path}
    if profile_path and run.profile is not None:
        with open(profile_path, "w", encoding="utf-8") as fh:
            json.dump(run.profile, fh, sort_keys=True, indent=2)
            fh.write("\n")
        written["profile"] = {"path": profile_path}
    return written


def store_run(run: TracedRun, store_root: str) -> str:
    """Persist one traced trial into the content-addressed run store.

    Serialises the trial's trace / metrics / profile into a temporary
    staging area and hands them to :meth:`repro.obs.store.RunStore.put`
    (traces land gzip-compressed under ``runs/<digest>/``).  Returns the
    short run ref for ``python -m repro.obs store get`` / ``diff``.
    """
    import os
    import tempfile

    from repro.obs.store import RunStore

    store = RunStore(store_root)
    with tempfile.TemporaryDirectory() as td:
        tp = os.path.join(td, "trace.jsonl")
        run.bus.write_jsonl(tp)
        mp = os.path.join(td, "metrics.json")
        with open(mp, "w", encoding="utf-8") as fh:
            json.dump(run.metrics, fh, sort_keys=True, indent=2)
            fh.write("\n")
        files = {"trace.jsonl": tp, "metrics.json": mp}
        if run.profile is not None:
            pp = os.path.join(td, "profile.json")
            with open(pp, "w", encoding="utf-8") as fh:
                json.dump(run.profile, fh, sort_keys=True, indent=2)
                fh.write("\n")
            files["profile.json"] = pp
        return store.put(files, meta=dict(run.meta))


def trace_experiment(
    app: str,
    scale: Scale | None,
    trace_path: str | None,
    metrics_path: str | None,
    load_bps: float = 0.0,
    n_nodes: int = 4,
    faults: FaultPlan | None = None,
    profile_path: str | None = None,
    store_root: str | None = None,
) -> TracedRun | None:
    """The experiment drivers' observability back end.

    Runs one traced ``app`` trial (``"ga"`` or ``"bayes"``) matching the
    experiment's machine shape, writes the requested artifacts
    (``--trace``/``--metrics``/``--profile``), optionally archives the
    trial into the run store (``--store``), and prints where everything
    landed.  No-op returning None when no destination is given.
    """
    if not trace_path and not metrics_path and not profile_path and not store_root:
        return None
    profile = bool(profile_path)
    if app == "ga":
        run = traced_ga_run(
            scale, n_demes=n_nodes, load_bps=load_bps, faults=faults,
            profile=profile,
        )
    elif app == "bayes":
        run = traced_bayes_run(
            scale, n_procs=n_nodes, faults=faults, profile=profile
        )
    else:
        raise ValueError(f"unknown traced app {app!r}")
    written = write_artifacts(run, trace_path, metrics_path, profile_path)
    if "trace" in written:
        print(
            f"trace: {written['trace']['events']} events -> "
            f"{written['trace']['path']}  "
            f"(render with: python -m repro.obs report {written['trace']['path']})"
        )
    if "metrics" in written:
        print(f"metrics snapshot -> {written['metrics']['path']}")
    if "profile" in written:
        print(
            f"host-time profile -> {written['profile']['path']}  "
            f"(render with: python -m repro.obs report "
            f"{trace_path or '<trace>'} --prof {written['profile']['path']})"
        )
    if store_root:
        ref = store_run(run, store_root)
        print(
            f"run stored -> {store_root} ref {ref}  "
            f"(list with: python -m repro.obs store --root {store_root} ls)"
        )
    return run
