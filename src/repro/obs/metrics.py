"""The metrics registry: counters, gauges and histograms for run reports.

Unlike the trace bus (a time-ordered event log), the registry is a
*snapshot*: at the end of a run, :func:`machine_metrics` folds the
counters every subsystem already keeps — :class:`~repro.core.global_read.
GlobalReadStats`, :class:`~repro.bayes.rollback.RollbackStats`,
:class:`~repro.network.stats.LinkStats`, the warp meter, the fault
injector — into one JSON-serialisable dict with a stable key order.
Because the inputs are counters the run maintains anyway, the snapshot
is cheap enough to attach to **every** experiment result
(``IslandGaResult.metrics`` / ``ParallelLsResult.metrics``), tracing on
or off.

The paper-facing metrics (DESIGN.md §10 maps each to a figure):

* blocked time per node and in aggregate — the Global_Read throttle
  whose age sensitivity drives Figure 4;
* the staleness-age distribution of values Global_Read returned;
* rollback count, cascade depth and wasted (resampled) work — the
  quantities that decide whether optimism pays (Lubachevsky & Weiss);
* per-stream warp percentiles — §4.3's network-load-derivative metric.
"""

from __future__ import annotations

import json
from typing import Any, Iterable

#: snapshot schema tag, bumped on incompatible layout changes
METRICS_SCHEMA = "repro-obs-metrics/1"

#: percentiles reported for every sample-backed histogram
_PERCENTILES = (50, 90, 99)


def percentile_from_samples(samples: list[float], q: float) -> float:
    """Nearest-rank percentile of ``samples`` (``q`` in [0, 100]).

    Deterministic and dependency-free; returns 0.0 for an empty list.
    """
    if not samples:
        return 0.0
    ordered = sorted(samples)
    if q <= 0:
        return ordered[0]
    rank = max(1, -(-len(ordered) * q // 100))  # ceil without math
    return ordered[min(int(rank), len(ordered)) - 1]


def _percentile_from_counts(counts: dict[int, int], q: float) -> float:
    """Nearest-rank percentile of an integer-valued count histogram."""
    total = sum(counts.values())
    if total == 0:
        return 0.0
    rank = max(1, -(-total * q // 100))
    seen = 0
    for value in sorted(counts):
        seen += counts[value]
        if seen >= rank:
            return float(value)
    return float(max(counts))


def _summary_from_samples(samples: list[float]) -> dict:
    """count/mean/min/max/pXX summary of a raw sample list."""
    if not samples:
        return {"count": 0}
    out: dict[str, Any] = {
        "count": len(samples),
        "mean": sum(samples) / len(samples),
        "min": min(samples),
        "max": max(samples),
    }
    for q in _PERCENTILES:
        out[f"p{q}"] = percentile_from_samples(samples, q)
    return out


def _summary_from_counts(counts: dict[int, int]) -> dict:
    """count/mean/min/max/pXX summary of an integer count histogram.

    Includes the exact ``counts`` mapping (string keys for JSON) so the
    full distribution survives serialisation.
    """
    total = sum(counts.values())
    if total == 0:
        return {"count": 0, "counts": {}}
    weighted = sum(k * v for k, v in counts.items())
    out: dict[str, Any] = {
        "count": total,
        "mean": weighted / total,
        "min": float(min(counts)),
        "max": float(max(counts)),
        "counts": {str(k): counts[k] for k in sorted(counts)},
    }
    for q in _PERCENTILES:
        out[f"p{q}"] = _percentile_from_counts(counts, q)
    return out


class MetricsRegistry:
    """Named counters, gauges and histograms with a stable JSON snapshot.

    The registry is write-mostly: subsystems (or the snapshot builders
    below) record values, then :meth:`snapshot` renders everything with
    sorted keys so two identical runs serialise byte-identically.
    """

    def __init__(self) -> None:
        self.counters: dict[str, float] = {}
        self.gauges: dict[str, float] = {}
        self._samples: dict[str, list[float]] = {}
        self._counts: dict[str, dict[int, int]] = {}
        self.per_node: dict[int, dict[str, float]] = {}

    def count(self, name: str, amount: float = 1) -> None:
        """Add ``amount`` to the counter ``name`` (created at 0)."""
        self.counters[name] = self.counters.get(name, 0) + amount

    def gauge(self, name: str, value: float) -> None:
        """Set the gauge ``name`` to its latest ``value``."""
        self.gauges[name] = float(value)

    def observe(self, name: str, value: float) -> None:
        """Record one sample into the histogram ``name``."""
        self._samples.setdefault(name, []).append(float(value))

    def observe_many(self, name: str, values: Iterable[float]) -> None:
        """Record a batch of samples into the histogram ``name``."""
        self._samples.setdefault(name, []).extend(float(v) for v in values)

    def counts_histogram(self, name: str, counts: dict[int, int]) -> None:
        """Install an integer-valued count histogram under ``name``.

        Used for distributions a subsystem already tracks as counts
        (Global_Read staleness ages, rollback depths) — no re-expansion
        into raw samples.
        """
        self._counts[name] = dict(counts)

    def node(self, node_id: int) -> dict[str, float]:
        """The mutable per-node metric mapping for ``node_id``."""
        return self.per_node.setdefault(node_id, {})

    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        """One JSON-serialisable dict of everything, keys sorted."""
        histograms = {
            name: _summary_from_samples(samples)
            for name, samples in self._samples.items()
        }
        histograms.update(
            (name, _summary_from_counts(counts))
            for name, counts in self._counts.items()
        )
        return {
            "schema": METRICS_SCHEMA,
            "counters": dict(sorted(self.counters.items())),
            "gauges": dict(sorted(self.gauges.items())),
            "histograms": dict(sorted(histograms.items())),
            "per_node": {
                str(n): dict(sorted(m.items()))
                for n, m in sorted(self.per_node.items())
            },
        }

    def to_json(self, indent: int = 2) -> str:
        """The snapshot as a stable (sorted-keys) JSON string."""
        return json.dumps(self.snapshot(), sort_keys=True, indent=indent)


def machine_metrics(machine, dsm=None, rollback=None) -> dict:
    """Snapshot one finished run's machine/DSM/rollback counters.

    Parameters
    ----------
    machine:
        The :class:`~repro.cluster.machine.Machine` the run executed on.
    dsm:
        Optional :class:`~repro.core.dsm.Dsm`; contributes Global_Read
        and per-node DSM counters.
    rollback:
        Optional merged :class:`~repro.bayes.rollback.RollbackStats`;
        contributes gamble/rollback/wasted-sample counters.

    Returns the plain-dict snapshot (picklable, so results can cross
    :func:`repro.experiments.runner.parallel_map` process boundaries).
    """
    reg = MetricsRegistry()
    kernel = machine.kernel
    now = kernel.now
    reg.gauge("time.completion", now)
    reg.count("kernel.events", kernel.events_executed)
    reg.count("messages.sent", machine.vm.total_messages())
    reg.count("net.frames_sent", machine.network.stats.frames_sent)
    reg.count("net.bytes_sent", machine.network.stats.bytes_sent)
    reg.gauge("net.utilization", machine.network.stats.utilization(now))
    reg.gauge("net.mean_latency", machine.network.stats.latency.mean)

    if machine.warp is not None:
        reg.gauge("warp.mean", machine.warp.mean_warp)
        reg.gauge("warp.max", machine.warp.max_warp)
        if machine.warp.keep_samples:
            reg.observe_many("warp", machine.warp.samples)
            reg.count("warp.samples_dropped", machine.warp.samples_dropped)
            for (dst, src), samples in sorted(machine.warp.stream_samples.items()):
                reg.observe_many(f"warp.stream.{dst}<-{src}", samples)

    if dsm is not None:
        gr = dsm.merged_gr_stats()
        reg.count("gr.calls", gr.calls)
        reg.count("gr.hits", gr.hits)
        reg.count("gr.blocked", gr.blocked)
        reg.count("gr.requests_sent", gr.requests_sent)
        reg.gauge("gr.block_time", gr.block_time)
        reg.gauge("gr.hit_rate", gr.hit_rate)
        reg.gauge("gr.mean_block_time", gr.mean_block_time)
        reg.counts_histogram("gr.staleness", gr.staleness_histogram)
        for tid, node in sorted(dsm._nodes.items()):
            pn = reg.node(tid)
            pn["gr_calls"] = node.gr_stats.calls
            pn["gr_hits"] = node.gr_stats.hits
            pn["gr_blocked"] = node.gr_stats.blocked
            pn["gr_block_time"] = node.gr_stats.block_time
            pn["dsm_writes"] = node.stats.writes
            pn["updates_sent"] = node.stats.updates_sent
            pn["updates_received"] = node.stats.updates_received

    if rollback is not None:
        reg.count("rb.gambles", rollback.gambles)
        reg.count("rb.gamble_hits", rollback.gamble_hits)
        reg.count("rb.rollbacks", rollback.rollbacks)
        reg.count("rb.wasted_samples", rollback.nodes_resampled)
        reg.count("rb.corrections_sent", rollback.corrections_sent)
        reg.count("rb.corrections_received", rollback.corrections_received)
        reg.gauge("rb.gamble_hit_rate", rollback.gamble_hit_rate)
        reg.counts_histogram("rb.depth", rollback.depth_histogram)

    if machine.faults is not None:
        for key, value in machine.faults.stats.as_dict().items():
            reg.count(f"faults.{key}", value)
        reg.count("faults.log_events", len(machine.faults.log))

    return reg.snapshot()
