"""Content-addressed on-disk run store (``python -m repro.obs store``).

ROADMAP item 5 wants experiment results stored content-addressed so
dashboards and diffs can be served over historical runs; this module is
that storage layer.  One *run* is a named set of artifacts — config,
metrics, traces, analysis tables — plus free-form metadata; its
identity is a SHA-256 over the stored bytes of every artifact and the
metadata, generalizing the ``"<locn>@<iter>"`` lineage-ref idiom from
the causal layer: a ref names immutable content, never a location in
time.

Layout under the store root::

    runs/<digest16>/manifest.json      repro-obs-run/1 envelope
    runs/<digest16>/<artifact files>   traces gzip-compressed

Properties:

* **Deterministic.**  Artifacts are stored byte-for-byte; traces are
  recompressed with a zeroed gzip mtime, so the same run content always
  produces the same digest (the round-trip put→get→put test pins this).
* **Idempotent.**  Re-putting identical content lands on the existing
  directory and returns the same ref.
* **Streaming-friendly.**  A :class:`repro.obs.bus.GzipJsonlSink` can
  write a trace *directly into* a staging directory (:meth:`RunStore.
  stage` + :meth:`RunStore.put_staged`), so a 256-deme traced
  scale_study run never holds its trace in memory; committing then only
  hashes and renames.

Refs accepted everywhere: a unique digest prefix (≥ 4 hex chars) or
``latest`` (highest put sequence number).
"""

from __future__ import annotations

import gzip
import json
import os
import shutil
from hashlib import sha256
from typing import Any

from repro.util.envelope import envelope_digest, make_envelope

#: schema tag of the per-run manifest envelope
RUN_SCHEMA = "repro-obs-run/1"

#: chunk size for hashing / (de)compressing artifact files
_CHUNK = 1 << 20


def _file_sha256(path: str) -> tuple[str, int]:
    """(hex digest, byte count) of a file's stored bytes."""
    h = sha256()
    n = 0
    with open(path, "rb") as fh:
        while True:
            block = fh.read(_CHUNK)
            if not block:
                break
            h.update(block)
            n += len(block)
    return h.hexdigest(), n


def _copy_compressed(src: str, dst_gz: str) -> None:
    """Gzip ``src`` into ``dst_gz`` with a zeroed mtime (deterministic)."""
    with open(src, "rb") as fin, open(dst_gz, "wb") as raw:
        gz = gzip.GzipFile(
            filename="", fileobj=raw, mode="wb", compresslevel=6, mtime=0
        )
        shutil.copyfileobj(fin, gz, _CHUNK)
        gz.close()


def _is_trace(name: str) -> bool:
    return name.endswith(".jsonl") or name.endswith(".jsonl.gz")


class RunStore:
    """Content-addressed run storage rooted at ``root``."""

    def __init__(self, root: str) -> None:
        self.root = os.fspath(root)
        self.runs_dir = os.path.join(self.root, "runs")

    # ------------------------------------------------------------------
    # Writing
    # ------------------------------------------------------------------
    def stage(self) -> str:
        """A fresh staging directory inside the store (same filesystem,
        so :meth:`put_staged` promotes it with one rename)."""
        os.makedirs(self.runs_dir, exist_ok=True)
        k = 0
        while True:
            path = os.path.join(self.runs_dir, f".stage{k}")
            try:
                os.makedirs(path)
                return path
            except FileExistsError:
                k += 1

    def put(self, files: dict[str, str], meta: dict[str, Any] | None = None) -> str:
        """Store the named artifact files; returns the run ref (digest16).

        ``files`` maps artifact name → source path.  Trace sources
        (``*.jsonl`` or ``*.jsonl.gz``, including rotated gzip parts
        next to them) are stored as a single gzip artifact under
        ``<name>.gz``; everything else is copied byte-for-byte.
        Identical content is deduplicated: the existing run directory
        wins and its ref is returned.
        """
        from repro.obs.bus import iter_trace_lines, trace_paths

        stage = self.stage()
        try:
            for name, src in files.items():
                if _is_trace(name):
                    base = name[:-3] if name.endswith(".gz") else name
                    dst = os.path.join(stage, base + ".gz")
                    parts = trace_paths(src)
                    if len(parts) == 1 and src.endswith(".gz"):
                        # already one deterministic gz member: keep bytes
                        shutil.copyfile(src, dst)
                    elif len(parts) == 1:
                        _copy_compressed(src, dst)
                    else:
                        # rotated source flattens into one gz artifact
                        with open(dst, "wb") as raw:
                            gz = gzip.GzipFile(
                                filename="", fileobj=raw, mode="wb",
                                compresslevel=6, mtime=0,
                            )
                            for line in iter_trace_lines(src):
                                gz.write(line.rstrip("\n").encode("utf-8"))
                                gz.write(b"\n")
                            gz.close()
                else:
                    shutil.copyfile(src, os.path.join(stage, os.path.basename(name)))
            return self.put_staged(stage, meta)
        except BaseException:
            shutil.rmtree(stage, ignore_errors=True)
            raise

    def put_staged(self, stage: str, meta: dict[str, Any] | None = None) -> str:
        """Promote a staging directory (see :meth:`stage`) into the store.

        Hashes every file in ``stage``, writes the manifest, renames the
        directory to its content digest, and returns the ref.
        """
        meta = dict(meta or {})
        entries: dict[str, dict[str, Any]] = {}
        for name in sorted(os.listdir(stage)):
            digest, nbytes = _file_sha256(os.path.join(stage, name))
            entries[name] = {"sha256": digest, "bytes": nbytes}
        digest = envelope_digest({"files": entries, "meta": meta})
        ref = digest[:16]
        final = os.path.join(self.runs_dir, ref)
        if os.path.exists(final):
            shutil.rmtree(stage, ignore_errors=True)
            return ref
        manifest = make_envelope(
            RUN_SCHEMA,
            {
                "digest": digest,
                "seq": self._next_seq(),
                "files": entries,
                "meta": meta,
            },
        )
        with open(os.path.join(stage, "manifest.json"), "w", encoding="utf-8") as fh:
            json.dump(manifest, fh, indent=2, sort_keys=True)
            fh.write("\n")
        os.rename(stage, final)
        return ref

    def _next_seq(self) -> int:
        seqs = [run["seq"] for run in self.ls()]
        return max(seqs, default=-1) + 1

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------
    def ls(self) -> list[dict[str, Any]]:
        """All runs, oldest first: ``{ref, seq, digest, files, meta}``."""
        if not os.path.isdir(self.runs_dir):
            return []
        out = []
        for name in sorted(os.listdir(self.runs_dir)):
            manifest_path = os.path.join(self.runs_dir, name, "manifest.json")
            if name.startswith(".") or not os.path.isfile(manifest_path):
                continue
            with open(manifest_path, "r", encoding="utf-8") as fh:
                env = json.load(fh)
            out.append(
                {
                    "ref": name,
                    "seq": env["seq"],
                    "digest": env["digest"],
                    "files": env["files"],
                    "meta": env["meta"],
                }
            )
        out.sort(key=lambda r: r["seq"])
        return out

    def resolve(self, ref: str) -> str:
        """A user-supplied ref → the stored run's directory name.

        Accepts ``latest`` or any unique digest prefix; raises
        ``KeyError`` for no match or an ambiguous prefix.
        """
        runs = self.ls()
        if not runs:
            raise KeyError(f"run store at {self.root!r} is empty")
        if ref == "latest":
            return runs[-1]["ref"]
        matches = [r["ref"] for r in runs if r["ref"].startswith(ref) or r["digest"].startswith(ref)]
        if not matches:
            raise KeyError(f"no stored run matches ref {ref!r}")
        if len(set(matches)) > 1:
            raise KeyError(f"ambiguous ref {ref!r}: matches {sorted(set(matches))}")
        return matches[0]

    def run_dir(self, ref: str) -> str:
        """The on-disk directory of a stored run."""
        return os.path.join(self.runs_dir, self.resolve(ref))

    def manifest(self, ref: str) -> dict[str, Any]:
        """The run's ``repro-obs-run/1`` manifest envelope."""
        with open(os.path.join(self.run_dir(ref), "manifest.json"), encoding="utf-8") as fh:
            return json.load(fh)

    def artifact(self, ref: str, name: str) -> str:
        """Path of artifact ``name`` inside a stored run.

        Traces stored compressed resolve with or without the ``.gz``
        suffix (``read_jsonl`` reads either form directly).
        """
        base = self.run_dir(ref)
        for candidate in (name, name + ".gz"):
            path = os.path.join(base, candidate)
            if os.path.exists(path):
                return path
        raise KeyError(f"run {ref!r} has no artifact {name!r}")

    def trace_path(self, ref: str) -> str:
        """The run's first trace artifact (``*.jsonl[.gz]``)."""
        manifest = self.manifest(ref)
        for name in sorted(manifest["files"]):
            if name.endswith(".jsonl") or name.endswith(".jsonl.gz"):
                return os.path.join(self.run_dir(ref), name)
        raise KeyError(f"run {ref!r} holds no trace artifact")

    def get(self, ref: str, dest: str) -> list[str]:
        """Extract a run's artifacts into ``dest`` (decompressing traces).

        Returns the extracted file names.  The manifest is copied
        verbatim so a round trip preserves identity.
        """
        base = self.run_dir(ref)
        os.makedirs(dest, exist_ok=True)
        out = []
        for name in sorted(os.listdir(base)):
            src = os.path.join(base, name)
            if name.endswith(".jsonl.gz"):
                plain = name[: -len(".gz")]
                with gzip.open(src, "rb") as fin, open(
                    os.path.join(dest, plain), "wb"
                ) as fout:
                    shutil.copyfileobj(fin, fout, _CHUNK)
                out.append(plain)
            else:
                shutil.copyfile(src, os.path.join(dest, name))
                out.append(name)
        return out
