"""Render a structured trace (and optional metrics snapshot) as text.

The report answers the questions the paper's evaluation asks of a run:

* **Per-node timeline** — for each application node, an ASCII strip of
  the run binned into equal time slices: ``#`` computing, ``X`` blocked
  in ``Global_Read``, ``.`` otherwise (idle / communicating).  A
  partially asynchronous run shows short, scattered ``X`` runs; a
  synchronous run shows lock-step blocking bands.
* **Blocking summary** — per-node ``Global_Read`` calls, hits, blocks
  and waited time (the Figure-4 age-sensitivity quantity).
* **Rollback summary** — Time-Warp rollback count, cascade-depth
  distribution and corrections emitted (the wasted-work quantities of
  the synchronous-relaxation literature).
* **Warp table** — per-(receiver, sender) stream warp percentiles,
  recomputed *from the trace* exactly as :class:`repro.network.warp.
  WarpMeter` computes them live (arrival-gap / send-gap of consecutive
  ``net.deliver`` events of kind ``pvm``).

Everything renders deterministically (sorted keys, fixed float formats):
the report of a fixed-seed run is golden-testable.
"""

from __future__ import annotations

from collections import Counter

from repro.obs.bus import ObsEvent
from repro.obs.metrics import percentile_from_samples

#: timeline strip width (bins) by default
DEFAULT_BINS = 60

#: timeline glyphs
GLYPH_BLOCKED = "X"
GLYPH_COMPUTE = "#"
GLYPH_IDLE = "."


def _table(headers: list[str], rows: list[list], title: str | None = None) -> str:
    """Minimal fixed-width text table (no dependency on repro.experiments)."""

    def fmt(cell) -> str:
        if isinstance(cell, float):
            return f"{cell:.4g}"
        return str(cell)

    cells = [[fmt(c) for c in row] for row in rows]
    widths = [
        max(len(h), *(len(r[i]) for r in cells)) if cells else len(h)
        for i, h in enumerate(headers)
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)).rstrip())
    lines.append("  ".join("-" * w for w in widths))
    for row in cells:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)).rstrip())
    return "\n".join(lines)


def _intervals(events: list[ObsEvent]) -> tuple[dict, dict]:
    """(blocked, compute) intervals per node from the event stream.

    Blocked intervals pair each ``gr.block`` with the next ``gr.unblock``
    on the same (node, locn); an unmatched block extends to the end of
    the trace (the reader never resumed — e.g. a lossy fault plan).
    """
    end_time = events[-1].time if events else 0.0
    blocked: dict[int, list[tuple[float, float]]] = {}
    compute: dict[int, list[tuple[float, float]]] = {}
    open_blocks: dict[tuple[int, str], float] = {}
    for e in events:
        if e.kind == "gr.block":
            open_blocks[(e.node, e.fields.get("locn", ""))] = e.time
        elif e.kind == "gr.unblock":
            start = open_blocks.pop((e.node, e.fields.get("locn", "")), None)
            if start is not None:
                blocked.setdefault(e.node, []).append((start, e.time))
        elif e.kind == "node.compute":
            cost = float(e.fields.get("cost", 0.0))
            if cost > 0:
                compute.setdefault(e.node, []).append((e.time, e.time + cost))
    for (node, _), start in sorted(open_blocks.items()):
        blocked.setdefault(node, []).append((start, end_time))
    return blocked, compute


def _overlaps(intervals: list[tuple[float, float]], lo: float, hi: float) -> bool:
    return any(s < hi and e > lo for s, e in intervals)


def render_timeline(events: list[ObsEvent], bins: int = DEFAULT_BINS) -> str:
    """The per-node ASCII timeline section."""
    if not events:
        return "Per-node timeline: (no events)"
    t_end = max(e.time for e in events)
    if t_end <= 0:
        return "Per-node timeline: (zero-length run)"
    blocked, compute = _intervals(events)
    nodes = sorted(set(blocked) | set(compute))
    if not nodes:
        return "Per-node timeline: (no node activity events)"
    width = bins
    step = t_end / width
    lines = [
        f"Per-node timeline  [0 .. {t_end:.4g}s, {width} bins; "
        f"{GLYPH_COMPUTE}=compute {GLYPH_BLOCKED}=blocked(Global_Read) "
        f"{GLYPH_IDLE}=idle/comm]"
    ]
    for node in nodes:
        strip = []
        for b in range(width):
            lo, hi = b * step, (b + 1) * step
            if _overlaps(blocked.get(node, []), lo, hi):
                strip.append(GLYPH_BLOCKED)
            elif _overlaps(compute.get(node, []), lo, hi):
                strip.append(GLYPH_COMPUTE)
            else:
                strip.append(GLYPH_IDLE)
        lines.append(f"  node {node:>3} |{''.join(strip)}|")
    return "\n".join(lines)


def render_blocking(events: list[ObsEvent]) -> str:
    """The Global_Read blocking summary section."""
    per_node: dict[int, dict[str, float]] = {}
    for e in events:
        if not e.kind.startswith("gr."):
            continue
        row = per_node.setdefault(
            e.node, {"calls": 0, "hits": 0, "blocks": 0, "waited": 0.0, "max_wait": 0.0}
        )
        if e.kind == "gr.hit":
            row["calls"] += 1
            row["hits"] += 1
        elif e.kind == "gr.block":
            row["calls"] += 1
            row["blocks"] += 1
        elif e.kind == "gr.unblock":
            waited = float(e.fields.get("waited", 0.0))
            row["waited"] += waited
            row["max_wait"] = max(row["max_wait"], waited)
    if not per_node:
        return "Blocking summary: no Global_Read events in trace"
    rows = []
    for node in sorted(per_node):
        r = per_node[node]
        mean_wait = r["waited"] / r["blocks"] if r["blocks"] else 0.0
        rows.append(
            [node, int(r["calls"]), int(r["hits"]), int(r["blocks"]),
             r["waited"], mean_wait, r["max_wait"]]
        )
    totals = [
        "all",
        sum(r[1] for r in rows), sum(r[2] for r in rows), sum(r[3] for r in rows),
        sum(r[4] for r in rows),
        (sum(r[4] for r in rows) / sum(r[3] for r in rows)) if sum(r[3] for r in rows) else 0.0,
        max(r[6] for r in rows),
    ]
    return _table(
        ["node", "gr calls", "hits", "blocks", "blocked time (s)",
         "mean wait (s)", "max wait (s)"],
        rows + [totals],
        title="Blocking summary (Global_Read)",
    )


def render_rollback(events: list[ObsEvent]) -> str:
    """The Time-Warp rollback summary section."""
    rollbacks = [e for e in events if e.kind == "rb.begin"]
    ends = [e for e in events if e.kind == "rb.end"]
    if not rollbacks:
        return "Rollback summary: no rollback events in trace"
    depth_counts: dict[int, int] = {}
    per_node: dict[int, int] = {}
    for e in rollbacks:
        d = int(e.fields.get("depth", 0))
        depth_counts[d] = depth_counts.get(d, 0) + 1
        per_node[e.node] = per_node.get(e.node, 0) + 1
    corrections = sum(int(e.fields.get("corrections", 0)) for e in ends)
    depths = sorted(
        d for d, n in depth_counts.items() for _ in range(n)
    )
    lines = [
        "Rollback summary (Time-Warp)",
        f"  rollbacks: {len(rollbacks)}   corrections emitted: {corrections}",
        f"  cascade depth: mean {sum(depths) / len(depths):.2f}  "
        f"p50 {percentile_from_samples(depths, 50):.0f}  "
        f"p90 {percentile_from_samples(depths, 90):.0f}  "
        f"max {max(depths)}",
        "  depth histogram: "
        + "  ".join(f"{d}:{depth_counts[d]}" for d in sorted(depth_counts)),
        "  per node: "
        + "  ".join(f"node{n}:{per_node[n]}" for n in sorted(per_node)),
    ]
    return "\n".join(lines)


def render_warp(events: list[ObsEvent]) -> str:
    """The per-stream warp table, recomputed from delivery events."""
    last: dict[tuple[int, int], tuple[float, float]] = {}
    streams: dict[tuple[int, int], list[float]] = {}
    for e in events:
        if e.kind != "net.deliver" or e.fields.get("frame_kind") != "pvm":
            continue
        key = (e.node, int(e.fields.get("src", -1)))
        enq = float(e.fields.get("enq", 0.0))
        prev = last.get(key)
        last[key] = (enq, e.time)
        if prev is None:
            continue
        send_gap = enq - prev[0]
        if send_gap <= 0:
            continue
        streams.setdefault(key, []).append((e.time - prev[1]) / send_gap)
    if not streams:
        return "Warp table: no pvm delivery events in trace"
    rows = []
    all_samples: list[float] = []
    for (dst, src) in sorted(streams):
        s = streams[(dst, src)]
        all_samples.extend(s)
        rows.append([
            f"{dst}<-{src}", len(s), sum(s) / len(s),
            percentile_from_samples(s, 50), percentile_from_samples(s, 90),
            percentile_from_samples(s, 99), max(s),
        ])
    rows.append([
        "all", len(all_samples), sum(all_samples) / len(all_samples),
        percentile_from_samples(all_samples, 50),
        percentile_from_samples(all_samples, 90),
        percentile_from_samples(all_samples, 99),
        max(all_samples),
    ])
    return _table(
        ["stream", "samples", "mean", "p50", "p90", "p99", "max"],
        rows,
        title="Warp per (receiver <- sender) stream (1.0 = stable load)",
    )


def render_commits(events: list[ObsEvent]) -> str:
    """GVT / commit progression (Bayes runs only)."""
    commits = [e for e in events if e.kind == "bn.commit"]
    advances = [e for e in events if e.kind == "gvt.advance"]
    if not commits and not advances:
        return ""
    total = sum(int(e.fields.get("runs", 0)) for e in commits)
    final_floor = int(advances[-1].fields.get("floor", 0)) if advances else 0
    return (
        "GVT / commits\n"
        f"  commit batches: {len(commits)}   runs committed: {total}   "
        f"final GVT floor: {final_floor}"
    )


def render_faults(events: list[ObsEvent]) -> str:
    """Injected-fault counts (chaos runs only)."""
    counts: dict[str, int] = {}
    for e in events:
        if e.kind.startswith("fault."):
            counts[e.kind] = counts.get(e.kind, 0) + 1
    if not counts:
        return ""
    return "Injected faults\n  " + "  ".join(
        f"{k.removeprefix('fault.')}:{v}" for k, v in sorted(counts.items())
    )


def render_metrics(metrics: dict) -> str:
    """Counters/gauges of a metrics snapshot as two compact tables."""
    counters = _table(
        ["counter", "value"],
        [[k, v] for k, v in sorted(metrics.get("counters", {}).items())],
        title="Metrics — counters",
    )
    gauges = _table(
        ["gauge", "value"],
        [[k, v] for k, v in sorted(metrics.get("gauges", {}).items())],
        title="Metrics — gauges",
    )
    return counters + "\n\n" + gauges


def render_report(
    events: list[ObsEvent],
    metrics: dict | None = None,
    bins: int = DEFAULT_BINS,
) -> str:
    """The full report: header + every applicable section."""
    events = sorted(events, key=lambda e: e.time)
    t_end = events[-1].time if events else 0.0
    header = (
        f"Trace report — {len(events)} events over {t_end:.4g} simulated "
        "seconds\n  events by kind: "
        + "  ".join(
            f"{k}:{v}"
            for k, v in sorted(Counter(e.kind for e in events).items())
        )
    )
    sections = [
        header,
        render_timeline(events, bins=bins),
        render_blocking(events),
        render_rollback(events),
        render_warp(events),
        render_commits(events),
        render_faults(events),
    ]
    if metrics is not None:
        sections.append(render_metrics(metrics))
    return "\n\n".join(s for s in sections if s)
