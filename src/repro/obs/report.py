"""Render a structured trace (and optional metrics snapshot) as text.

The report answers the questions the paper's evaluation asks of a run:

* **Per-node timeline** — for each application node, an ASCII strip of
  the run binned into equal time slices: ``#`` computing, ``X`` blocked
  in ``Global_Read``, ``.`` otherwise (idle / communicating).  A
  partially asynchronous run shows short, scattered ``X`` runs; a
  synchronous run shows lock-step blocking bands.
* **Blocking summary** — per-node ``Global_Read`` calls, hits, blocks
  and waited time (the Figure-4 age-sensitivity quantity).
* **Rollback summary** — Time-Warp rollback count, cascade-depth
  distribution and corrections emitted (the wasted-work quantities of
  the synchronous-relaxation literature).
* **Warp table** — per-(receiver, sender) stream warp percentiles,
  recomputed *from the trace* exactly as :class:`repro.network.warp.
  WarpMeter` computes them live (arrival-gap / send-gap of consecutive
  ``net.deliver`` events of kind ``pvm``).

Everything renders deterministically (sorted keys, fixed float formats):
the report of a fixed-seed run is golden-testable.

Each section is computed by a pure ``*_summary`` helper returning plain
dicts; the text renderers format those, and :func:`report_dict` bundles
them into the machine-readable ``repro-obs-report/1`` envelope behind
``python -m repro.obs report --json`` (what CI and the trace differ
consume instead of scraping text).
"""

from __future__ import annotations

from collections import Counter

from repro.obs.bus import ObsEvent
from repro.obs.metrics import percentile_from_samples
from repro.util.envelope import make_envelope

#: schema tag of the :func:`report_dict` JSON envelope
REPORT_SCHEMA = "repro-obs-report/1"

#: timeline strip width (bins) by default
DEFAULT_BINS = 60

#: timeline glyphs
GLYPH_BLOCKED = "X"
GLYPH_COMPUTE = "#"
GLYPH_IDLE = "."


def _table(headers: list[str], rows: list[list], title: str | None = None) -> str:
    """Minimal fixed-width text table (no dependency on repro.experiments)."""

    def fmt(cell) -> str:
        if isinstance(cell, float):
            return f"{cell:.4g}"
        return str(cell)

    cells = [[fmt(c) for c in row] for row in rows]
    widths = [
        max(len(h), *(len(r[i]) for r in cells)) if cells else len(h)
        for i, h in enumerate(headers)
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)).rstrip())
    lines.append("  ".join("-" * w for w in widths))
    for row in cells:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)).rstrip())
    return "\n".join(lines)


def _intervals(events: list[ObsEvent]) -> tuple[dict, dict]:
    """(blocked, compute) intervals per node from the event stream.

    Blocked intervals pair each ``gr.block`` with the next ``gr.unblock``
    on the same (node, locn); an unmatched block extends to the end of
    the trace (the reader never resumed — e.g. a lossy fault plan).
    """
    end_time = events[-1].time if events else 0.0
    blocked: dict[int, list[tuple[float, float]]] = {}
    compute: dict[int, list[tuple[float, float]]] = {}
    open_blocks: dict[tuple[int, str], float] = {}
    for e in events:
        if e.kind == "gr.block":
            open_blocks[(e.node, e.fields.get("locn", ""))] = e.time
        elif e.kind == "gr.unblock":
            start = open_blocks.pop((e.node, e.fields.get("locn", "")), None)
            if start is not None:
                blocked.setdefault(e.node, []).append((start, e.time))
        elif e.kind == "node.compute":
            cost = float(e.fields.get("cost", 0.0))
            if cost > 0:
                compute.setdefault(e.node, []).append((e.time, e.time + cost))
    for (node, _), start in sorted(open_blocks.items()):
        blocked.setdefault(node, []).append((start, end_time))
    return blocked, compute


def _overlaps(intervals: list[tuple[float, float]], lo: float, hi: float) -> bool:
    return any(s < hi and e > lo for s, e in intervals)


def timeline_strips(events: list[ObsEvent], bins: int = DEFAULT_BINS) -> dict[int, str]:
    """Per-node timeline glyph strips (``#``/``X``/``.``), by node."""
    if not events:
        return {}
    t_end = max(e.time for e in events)
    if t_end <= 0:
        return {}
    blocked, compute = _intervals(events)
    step = t_end / bins
    strips: dict[int, str] = {}
    for node in sorted(set(blocked) | set(compute)):
        strip = []
        for b in range(bins):
            lo, hi = b * step, (b + 1) * step
            if _overlaps(blocked.get(node, []), lo, hi):
                strip.append(GLYPH_BLOCKED)
            elif _overlaps(compute.get(node, []), lo, hi):
                strip.append(GLYPH_COMPUTE)
            else:
                strip.append(GLYPH_IDLE)
        strips[node] = "".join(strip)
    return strips


def render_timeline(events: list[ObsEvent], bins: int = DEFAULT_BINS) -> str:
    """The per-node ASCII timeline section."""
    if not events:
        return "Per-node timeline: (no events)"
    t_end = max(e.time for e in events)
    if t_end <= 0:
        return "Per-node timeline: (zero-length run)"
    strips = timeline_strips(events, bins=bins)
    if not strips:
        return "Per-node timeline: (no node activity events)"
    lines = [
        f"Per-node timeline  [0 .. {t_end:.4g}s, {bins} bins; "
        f"{GLYPH_COMPUTE}=compute {GLYPH_BLOCKED}=blocked(Global_Read) "
        f"{GLYPH_IDLE}=idle/comm]"
    ]
    for node, strip in strips.items():
        lines.append(f"  node {node:>3} |{strip}|")
    return "\n".join(lines)


def blocking_summary(events: list[ObsEvent]) -> dict[int, dict[str, float]]:
    """Per-node Global_Read counters: calls/hits/blocks/waited/max_wait."""
    per_node: dict[int, dict[str, float]] = {}
    for e in events:
        if not e.kind.startswith("gr."):
            continue
        row = per_node.setdefault(
            e.node, {"calls": 0, "hits": 0, "blocks": 0, "waited": 0.0, "max_wait": 0.0}
        )
        if e.kind == "gr.hit":
            row["calls"] += 1
            row["hits"] += 1
        elif e.kind == "gr.block":
            row["calls"] += 1
            row["blocks"] += 1
        elif e.kind == "gr.unblock":
            waited = float(e.fields.get("waited", 0.0))
            row["waited"] += waited
            row["max_wait"] = max(row["max_wait"], waited)
    return per_node


def render_blocking(events: list[ObsEvent]) -> str:
    """The Global_Read blocking summary section."""
    per_node = blocking_summary(events)
    if not per_node:
        return "Blocking summary: no Global_Read events in trace"
    rows = []
    for node in sorted(per_node):
        r = per_node[node]
        mean_wait = r["waited"] / r["blocks"] if r["blocks"] else 0.0
        rows.append(
            [node, int(r["calls"]), int(r["hits"]), int(r["blocks"]),
             r["waited"], mean_wait, r["max_wait"]]
        )
    totals = [
        "all",
        sum(r[1] for r in rows), sum(r[2] for r in rows), sum(r[3] for r in rows),
        sum(r[4] for r in rows),
        (sum(r[4] for r in rows) / sum(r[3] for r in rows)) if sum(r[3] for r in rows) else 0.0,
        max(r[6] for r in rows),
    ]
    return _table(
        ["node", "gr calls", "hits", "blocks", "blocked time (s)",
         "mean wait (s)", "max wait (s)"],
        rows + [totals],
        title="Blocking summary (Global_Read)",
    )


def rollback_summary(events: list[ObsEvent]) -> dict | None:
    """Rollback counts, cascade-depth stats and causes, or None."""
    rollbacks = [e for e in events if e.kind == "rb.begin"]
    ends = [e for e in events if e.kind == "rb.end"]
    if not rollbacks:
        return None
    depth_counts: dict[int, int] = {}
    per_node: dict[int, int] = {}
    causes: dict[str, int] = {}
    for e in rollbacks:
        d = int(e.fields.get("depth", 0))
        depth_counts[d] = depth_counts.get(d, 0) + 1
        per_node[e.node] = per_node.get(e.node, 0) + 1
        cause = str(e.fields.get("cause", "unknown"))
        causes[cause] = causes.get(cause, 0) + 1
    depths = sorted(d for d, n in depth_counts.items() for _ in range(n))
    return {
        "rollbacks": len(rollbacks),
        "corrections": sum(int(e.fields.get("corrections", 0)) for e in ends),
        "depth_mean": sum(depths) / len(depths),
        "depth_p50": percentile_from_samples(depths, 50),
        "depth_p90": percentile_from_samples(depths, 90),
        "depth_max": max(depths),
        "depth_hist": {str(d): depth_counts[d] for d in sorted(depth_counts)},
        "per_node": {str(n): per_node[n] for n in sorted(per_node)},
        "causes": {c: causes[c] for c in sorted(causes)},
    }


def render_rollback(events: list[ObsEvent]) -> str:
    """The Time-Warp rollback summary section."""
    s = rollback_summary(events)
    if s is None:
        return "Rollback summary: no rollback events in trace"
    lines = [
        "Rollback summary (Time-Warp)",
        f"  rollbacks: {s['rollbacks']}   corrections emitted: {s['corrections']}",
        f"  cascade depth: mean {s['depth_mean']:.2f}  "
        f"p50 {s['depth_p50']:.0f}  "
        f"p90 {s['depth_p90']:.0f}  "
        f"max {s['depth_max']}",
        "  depth histogram: "
        + "  ".join(f"{d}:{n}" for d, n in s["depth_hist"].items()),
        "  per node: "
        + "  ".join(f"node{n}:{c}" for n, c in s["per_node"].items()),
    ]
    if set(s["causes"]) - {"unknown"}:
        lines.append(
            "  causes: " + "  ".join(f"{c}:{n}" for c, n in s["causes"].items())
        )
    return "\n".join(lines)


def warp_streams(
    events: list[ObsEvent],
) -> dict[tuple[int, int], list[tuple[float, float]]]:
    """Per-(receiver, sender) warp samples recomputed from the trace.

    Returns ``(dst, src) -> [(deliver_time, warp), …]`` — exactly the
    live :class:`repro.network.warp.WarpMeter` quantity (arrival-gap /
    send-gap of consecutive ``pvm`` deliveries), with the delivery time
    kept so warp-over-time can be plotted.
    """
    last: dict[tuple[int, int], tuple[float, float]] = {}
    streams: dict[tuple[int, int], list[tuple[float, float]]] = {}
    for e in events:
        if e.kind != "net.deliver" or e.fields.get("frame_kind") != "pvm":
            continue
        key = (e.node, int(e.fields.get("src", -1)))
        enq = float(e.fields.get("enq", 0.0))
        prev = last.get(key)
        last[key] = (enq, e.time)
        if prev is None:
            continue
        send_gap = enq - prev[0]
        if send_gap <= 0:
            continue
        streams.setdefault(key, []).append((e.time, (e.time - prev[1]) / send_gap))
    return streams


def render_warp(events: list[ObsEvent]) -> str:
    """The per-stream warp table, recomputed from delivery events."""
    streams = {k: [w for _, w in v] for k, v in warp_streams(events).items()}
    if not streams:
        return "Warp table: no pvm delivery events in trace"
    rows = []
    all_samples: list[float] = []
    for (dst, src) in sorted(streams):
        s = streams[(dst, src)]
        all_samples.extend(s)
        rows.append([
            f"{dst}<-{src}", len(s), sum(s) / len(s),
            percentile_from_samples(s, 50), percentile_from_samples(s, 90),
            percentile_from_samples(s, 99), max(s),
        ])
    rows.append([
        "all", len(all_samples), sum(all_samples) / len(all_samples),
        percentile_from_samples(all_samples, 50),
        percentile_from_samples(all_samples, 90),
        percentile_from_samples(all_samples, 99),
        max(all_samples),
    ])
    return _table(
        ["stream", "samples", "mean", "p50", "p90", "p99", "max"],
        rows,
        title="Warp per (receiver <- sender) stream (1.0 = stable load)",
    )


def commit_summary(events: list[ObsEvent]) -> dict | None:
    """GVT/commit progression counters (Bayes runs), or None."""
    commits = [e for e in events if e.kind == "bn.commit"]
    advances = [e for e in events if e.kind == "gvt.advance"]
    if not commits and not advances:
        return None
    return {
        "batches": len(commits),
        "runs_committed": sum(int(e.fields.get("runs", 0)) for e in commits),
        "final_floor": int(advances[-1].fields.get("floor", 0)) if advances else 0,
    }


def render_commits(events: list[ObsEvent]) -> str:
    """GVT / commit progression (Bayes runs only)."""
    s = commit_summary(events)
    if s is None:
        return ""
    return (
        "GVT / commits\n"
        f"  commit batches: {s['batches']}   runs committed: "
        f"{s['runs_committed']}   final GVT floor: {s['final_floor']}"
    )


def fault_counts(events: list[ObsEvent]) -> dict[str, int]:
    """Injected-fault event counts by kind (empty when fault-free)."""
    counts: dict[str, int] = {}
    for e in events:
        if e.kind.startswith("fault."):
            counts[e.kind] = counts.get(e.kind, 0) + 1
    return counts


def render_faults(events: list[ObsEvent]) -> str:
    """Injected-fault counts (chaos runs only)."""
    counts = fault_counts(events)
    if not counts:
        return ""
    return "Injected faults\n  " + "  ".join(
        f"{k.removeprefix('fault.')}:{v}" for k, v in sorted(counts.items())
    )


def parallel_summary(events: list[ObsEvent]) -> dict | None:
    """Per-shard bounded-lag window stats from ``par.window`` spans.

    A merged parallel-kernel trace (:func:`repro.sim.parallel.trace.
    merge_shard_traces`) carries one span per shard per floor epoch;
    this aggregates them into the utilization view: window count, total
    wall-clock barrier wait and wait events per shard.
    """
    spans = [e for e in events if e.kind == "par.window"]
    if not spans:
        return None
    per_shard: dict[int, dict[str, float]] = {}
    for e in spans:
        row = per_shard.setdefault(
            int(e.fields.get("shard", -1)),
            {"windows": 0, "wall_wait_s": 0.0, "waits": 0, "max_epoch": 0},
        )
        row["windows"] += 1
        row["wall_wait_s"] += float(e.fields.get("wall_wait_s", 0.0))
        row["waits"] += int(e.fields.get("waits", 0))
        row["max_epoch"] = max(row["max_epoch"], int(e.fields.get("epoch", 0)))
    return {
        "shards": len(per_shard),
        "per_shard": {str(s): per_shard[s] for s in sorted(per_shard)},
        "total_wall_wait_s": sum(r["wall_wait_s"] for r in per_shard.values()),
    }


def render_parallel(events: list[ObsEvent]) -> str:
    """The bounded-lag parallel-kernel section (sharded runs only)."""
    s = parallel_summary(events)
    if s is None:
        return ""
    rows = [
        [shard, int(r["windows"]), int(r["max_epoch"]), int(r["waits"]), r["wall_wait_s"]]
        for shard, r in s["per_shard"].items()
    ]
    return _table(
        ["shard", "windows", "last epoch", "waits", "wall wait (s)"],
        rows,
        title=(
            "Parallel kernel (bounded-lag windows) — "
            f"{s['shards']} shards, {s['total_wall_wait_s']:.3g}s total barrier wait"
        ),
    )


def fabric_summary(events: list[ObsEvent]) -> dict | None:
    """Switched-fabric delivery stats from annotated ``net.deliver``.

    Deliveries carry ``fabric``/``hops``/``bcast`` when they crossed a
    :class:`repro.network.switched.SwitchedNetwork`; shared-Ethernet
    traces have none and this section stays silent.  Link occupancy is
    reported as hop-traversals (each frame occupies ``hops`` directed
    links) per simulated second.
    """
    rows: dict[str, dict[str, float]] = {}
    t_end = events[-1].time if events else 0.0
    for e in events:
        if e.kind != "net.deliver" or "fabric" not in e.fields:
            continue
        row = rows.setdefault(
            str(e.fields["fabric"]),
            {
                "deliveries": 0, "broadcast": 0, "bytes": 0,
                "hop_traversals": 0, "max_hops": 0,
            },
        )
        hops = int(e.fields.get("hops", 0))
        row["deliveries"] += 1
        row["broadcast"] += 1 if e.fields.get("bcast") else 0
        row["bytes"] += int(e.fields.get("size", 0))
        row["hop_traversals"] += hops
        row["max_hops"] = max(row["max_hops"], hops)
    if not rows:
        return None
    for row in rows.values():
        row["mean_hops"] = row["hop_traversals"] / row["deliveries"]
        row["links_per_sim_s"] = row["hop_traversals"] / t_end if t_end > 0 else 0.0
    return {name: rows[name] for name in sorted(rows)}


def render_fabric(events: list[ObsEvent]) -> str:
    """The switched-fabric delivery section (switched runs only)."""
    s = fabric_summary(events)
    if s is None:
        return ""
    rows = [
        [
            name, int(r["deliveries"]), int(r["broadcast"]), int(r["bytes"]),
            r["mean_hops"], int(r["max_hops"]), r["links_per_sim_s"],
        ]
        for name, r in s.items()
    ]
    return _table(
        ["fabric", "deliveries", "bcast", "bytes", "mean hops", "max hops",
         "link occupancy (hops/sim-s)"],
        rows,
        title="Switched fabric deliveries",
    )


def render_metrics(metrics: dict) -> str:
    """Counters/gauges of a metrics snapshot as two compact tables."""
    counters = _table(
        ["counter", "value"],
        [[k, v] for k, v in sorted(metrics.get("counters", {}).items())],
        title="Metrics — counters",
    )
    gauges = _table(
        ["gauge", "value"],
        [[k, v] for k, v in sorted(metrics.get("gauges", {}).items())],
        title="Metrics — gauges",
    )
    return counters + "\n\n" + gauges


def render_report(
    events: list[ObsEvent],
    metrics: dict | None = None,
    bins: int = DEFAULT_BINS,
    prof: dict | None = None,
    meta: dict | None = None,
) -> str:
    """The full report: header + every applicable section.

    ``prof`` is an optional ``repro-obs-prof/1`` envelope (host-time
    profile); ``meta`` the trace's ``trace.meta`` trailer, whose
    ``events_dropped`` count — a truncated capture — is surfaced in the
    header rather than silently ignored.
    """
    events = sorted(events, key=lambda e: e.time)
    t_end = events[-1].time if events else 0.0
    dropped = int(meta.get("events_dropped", 0)) if meta else 0
    dropped_note = (
        f" (TRUNCATED CAPTURE: {dropped} events dropped at the buffer cap)"
        if dropped
        else ""
    )
    header = (
        f"Trace report — {len(events)} events over {t_end:.4g} simulated "
        f"seconds{dropped_note}\n  events by kind: "
        + "  ".join(
            f"{k}:{v}"
            for k, v in sorted(Counter(e.kind for e in events).items())
        )
    )
    sections = [
        header,
        render_timeline(events, bins=bins),
        render_blocking(events),
        render_rollback(events),
        render_warp(events),
        render_parallel(events),
        render_fabric(events),
        render_commits(events),
        render_faults(events),
    ]
    if metrics is not None:
        sections.append(render_metrics(metrics))
    if prof is not None:
        from repro.obs.prof import render_profile

        sections.append(render_profile(prof))
    return "\n\n".join(s for s in sections if s)


def _warp_stats(samples: list[float]) -> dict[str, float]:
    return {
        "samples": len(samples),
        "mean": sum(samples) / len(samples),
        "p50": percentile_from_samples(samples, 50),
        "p90": percentile_from_samples(samples, 90),
        "p99": percentile_from_samples(samples, 99),
        "max": max(samples),
    }


def report_dict(
    events: list[ObsEvent],
    metrics: dict | None = None,
    bins: int = DEFAULT_BINS,
    prof: dict | None = None,
    meta: dict | None = None,
) -> dict:
    """The report as a machine-readable dict (``repro-obs-report/1``).

    Same sections as :func:`render_report`, as plain JSON-serializable
    data: this is what ``python -m repro.obs report --json`` emits and
    what CI consumes instead of scraping the text rendering.  Keys of
    per-node maps are stringified node ids (JSON objects).
    """
    events = sorted(events, key=lambda e: e.time)
    t_end = events[-1].time if events else 0.0
    blocking = blocking_summary(events)
    streams = warp_streams(events)
    warp: dict[str, dict[str, float]] = {}
    all_samples: list[float] = []
    for (dst, src) in sorted(streams):
        samples = [w for _, w in streams[(dst, src)]]
        all_samples.extend(samples)
        warp[f"{dst}<-{src}"] = _warp_stats(samples)
    payload: dict = {
        "events": len(events),
        "t_end": t_end,
        "kinds": dict(sorted(Counter(e.kind for e in events).items())),
        "timeline": {
            "bins": bins,
            "glyphs": {
                "compute": GLYPH_COMPUTE,
                "blocked": GLYPH_BLOCKED,
                "idle": GLYPH_IDLE,
            },
            "per_node": {
                str(n): strip
                for n, strip in timeline_strips(events, bins=bins).items()
            },
        },
        "blocking": {
            "per_node": {str(n): blocking[n] for n in sorted(blocking)},
            "totals": {
                "calls": sum(int(r["calls"]) for r in blocking.values()),
                "hits": sum(int(r["hits"]) for r in blocking.values()),
                "blocks": sum(int(r["blocks"]) for r in blocking.values()),
                "waited": sum(r["waited"] for r in blocking.values()),
            },
        },
        "rollback": rollback_summary(events),
        "warp": {"streams": warp, "all": _warp_stats(all_samples) if all_samples else None},
        "parallel": parallel_summary(events),
        "fabric": fabric_summary(events),
        "commits": commit_summary(events),
        "faults": fault_counts(events),
        "events_dropped": int(meta.get("events_dropped", 0)) if meta else 0,
    }
    if metrics is not None:
        payload["metrics"] = metrics
    if prof is not None:
        payload["profile"] = prof
    return make_envelope(REPORT_SCHEMA, payload)
