"""PVM-style message-passing layer (after Geist et al., *PVM 3*).

The paper runs everything "on a multicomputer orchestrated by the PVM
message passing library" with a thin shared-memory layer on top (§4.1).
This package reproduces the PVM facilities that layer needs:

* typed pack/unpack buffers with byte-accurate sizes
  (:class:`~repro.pvm.message.PackBuffer` — ``pvm_pkint`` etc.),
* tagged, reliable, ordered point-to-point messages with wildcard
  receives (``recv``/``nrecv``/``probe``),
* multicast to a task list (``mcast`` — unicast fan-out, as real PVM
  implements it over UDP),
* group barrier (``barrier`` — coordinator-based, as in PVM groups),
* per-message software overheads charged as simulated CPU time,
  calibrated by :mod:`repro.cluster`.

Blocking calls are generators: application processes invoke them as
``msg = yield from task.recv(...)``.
"""

from repro.pvm.message import Message, PackBuffer, ANY_SOURCE, ANY_TAG
from repro.pvm.vm import PvmOverheads, Task, VirtualMachine

__all__ = [
    "Message",
    "PackBuffer",
    "ANY_SOURCE",
    "ANY_TAG",
    "PvmOverheads",
    "Task",
    "VirtualMachine",
]
