"""Messages and PVM-style typed pack/unpack buffers.

PVM programs assemble outgoing data with typed packing calls
(``pvm_pkint``, ``pvm_pkdouble``, ...) into a send buffer and disassemble
it in the same order on the receiving side.  :class:`PackBuffer`
reproduces that interface.  Its value to the simulation is *byte-accurate
message sizes*: the wire time charged for a migrant individual or an
interface-node sample is exactly what the equivalent C struct would cost,
even though the in-simulator payload is a Python object.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Sequence

import numpy as np

#: wildcard matching any sender tid (PVM's -1)
ANY_SOURCE = -1
#: wildcard matching any message tag (PVM's -1)
ANY_TAG = -1

_msg_ids = itertools.count()

#: bytes per packed element, matching 32-bit-era C sizes on AIX
_TYPE_SIZES = {"int": 4, "double": 8, "float": 4, "byte": 1, "str": 1}


class PackBuffer:
    """A typed, sequential pack/unpack buffer (``pvm_pk*`` / ``pvm_upk*``).

    Packing appends ``(type, values)`` records and grows :attr:`nbytes`;
    unpacking replays the records in order, checking the requested type and
    count.  A type or count mismatch raises — exactly the class of bug PVM
    programs hit when sender and receiver disagree on the format.
    """

    def __init__(self) -> None:
        self._records: list[tuple[str, Any]] = []
        self._cursor = 0
        self.nbytes = 0

    # -- packing -------------------------------------------------------
    def _pack(self, typ: str, values: Any, count: int) -> "PackBuffer":
        self._records.append((typ, values))
        self.nbytes += _TYPE_SIZES[typ] * count
        return self

    def pkint(self, values: int | Sequence[int]) -> "PackBuffer":
        """Pack a signed int (pvm_pkint)."""
        arr = np.atleast_1d(np.array(values, dtype=np.int64, copy=True))
        return self._pack("int", arr, arr.size)

    def pkdouble(self, values: float | Sequence[float]) -> "PackBuffer":
        """Pack a float (pvm_pkdouble)."""
        arr = np.atleast_1d(np.array(values, dtype=np.float64, copy=True))
        return self._pack("double", arr, arr.size)

    def pkbyte(self, values: bytes | Sequence[int]) -> "PackBuffer":
        """Pack a single byte (pvm_pkbyte)."""
        arr = np.frombuffer(bytes(values), dtype=np.uint8).copy()
        return self._pack("byte", arr, arr.size)

    def pkstr(self, value: str) -> "PackBuffer":
        """Pack a UTF-8 string with a length prefix (pvm_pkstr)."""
        data = value.encode("utf-8")
        return self._pack("str", data, len(data) + 1)  # NUL terminator

    # -- unpacking -----------------------------------------------------
    def _unpack(self, typ: str) -> Any:
        if self._cursor >= len(self._records):
            raise IndexError("unpack past end of buffer")
        rec_typ, values = self._records[self._cursor]
        if rec_typ != typ:
            raise TypeError(
                f"unpack type mismatch at record {self._cursor}: "
                f"buffer holds {rec_typ!r}, caller asked for {typ!r}"
            )
        self._cursor += 1
        return values

    def upkint(self) -> np.ndarray:
        """Unpack a signed int (pvm_upkint)."""
        return self._unpack("int")

    def upkdouble(self) -> np.ndarray:
        """Unpack a float (pvm_upkdouble)."""
        return self._unpack("double")

    def upkbyte(self) -> np.ndarray:
        """Unpack a single byte (pvm_upkbyte)."""
        return self._unpack("byte")

    def upkstr(self) -> str:
        """Unpack a string packed by :meth:`pkstr` (pvm_upkstr)."""
        return bytes(self._unpack("str")).decode("utf-8")

    def rewind(self) -> None:
        """Reset the unpack cursor (receivers may re-read)."""
        self._cursor = 0

    @property
    def exhausted(self) -> bool:
        """True once every packed item has been unpacked."""
        return self._cursor >= len(self._records)


@dataclass
class Message:
    """One PVM message as seen by the receiver.

    ``payload`` is either a :class:`PackBuffer` or any Python object (for
    internal layers that skip explicit packing but still declare
    ``nbytes``).

    ``trace_ref`` is an optional content-addressed causal-lineage tag
    (e.g. ``"iface.2@15"``) set by tracing-aware senders; it is copied
    onto every :class:`~repro.network.frame.Frame` the message fragments
    into and surfaces in ``net.deliver`` trace events.  It must never be
    derived from ``msg_id`` (a process-global counter), or identical-seed
    runs in one process would emit different traces.
    """

    src: int
    dst: int
    tag: int
    payload: Any
    nbytes: int
    msg_id: int = field(default_factory=lambda: next(_msg_ids))
    send_time: float = -1.0
    arrival_time: float = -1.0
    trace_ref: str | None = None

    def matches(self, src: int, tag: int) -> bool:
        """Wildcard-aware match used by recv/probe."""
        return (src == ANY_SOURCE or src == self.src) and (
            tag == ANY_TAG or tag == self.tag
        )

    @property
    def latency(self) -> float:
        """Delivery latency in simulated seconds (requires both timestamps)."""
        if self.arrival_time < 0 or self.send_time < 0:
            raise ValueError("message not delivered yet")
        return self.arrival_time - self.send_time
