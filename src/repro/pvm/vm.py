"""The virtual machine: tasks, fragmentation, mailboxes, barrier.

One :class:`Task` per node (PVM tid == node id here; the paper runs one
process per SP2 node).  ``send`` fragments messages above the link MTU and
the receiving side reassembles; messages between a given pair are
delivered in send order: the link models are FIFO per path, so fragments
— and therefore reassembled messages from one sender — complete in the
order they were submitted.

Software overheads
------------------
Real PVM spends substantial CPU per message (syscalls, memcpy, UDP
checksums) — on the paper's 77 MHz nodes roughly a millisecond per small
message.  Blocking calls here are generators that charge those costs as
simulated :class:`~repro.sim.process.Compute` time, so the
communication-to-computation ratio — the quantity the whole paper turns
on — is modelled at the right order of magnitude.  The constants live in
:class:`PvmOverheads` and are calibrated by :mod:`repro.cluster`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Generator, Iterable

from dataclasses import replace

from repro.network.base import Network
from repro.network.frame import BROADCAST, Frame
from repro.pvm.message import ANY_SOURCE, ANY_TAG, Message, PackBuffer
from repro.sim.kernel import Kernel
from repro.sim.process import Compute, Signal, WaitSignal

#: reserved tag space for layer-internal protocols
BARRIER_TAG = -1000
BARRIER_RELEASE_TAG = -1001


@dataclass(frozen=True)
class PvmOverheads:
    """Per-message software costs, charged as simulated CPU seconds.

    Defaults approximate PVM 3 over UDP on a 77 MHz POWER2 node: ~0.9 ms
    fixed send cost, ~0.6 ms fixed receive cost, plus per-byte memcpy/
    checksum costs equivalent to ~15 MB/s.
    """

    send_fixed: float = 0.9e-3
    send_per_byte: float = 65e-9
    #: extra fixed cost per additional mcast destination (buffer reused)
    mcast_per_dest: float = 0.25e-3
    recv_fixed: float = 0.6e-3
    recv_per_byte: float = 65e-9
    #: per-message protocol header bytes on the wire
    header_bytes: int = 32

    def send_cost(self, nbytes: int) -> float:
        """Sender-side CPU cost of shipping ``n_bytes``."""
        return self.send_fixed + self.send_per_byte * nbytes

    def recv_cost(self, nbytes: int) -> float:
        """Receiver-side CPU cost of absorbing ``n_bytes``."""
        return self.recv_fixed + self.recv_per_byte * nbytes


class Task:
    """One PVM task: an endpoint with a tagged mailbox.

    All blocking operations (``recv``, ``barrier``) are generators to be
    driven with ``yield from`` inside a simulated process.  ``send`` is
    also a generator because it charges CPU overhead before the frames
    leave the adapter.
    """

    def __init__(self, vm: "VirtualMachine", tid: int, name: str) -> None:
        self.vm = vm
        self.tid = tid
        self.name = name
        self.mailbox: list[Message] = []
        self.mail_signal = Signal(f"{name}.mail")
        # fragment reassembly: (src, msg_id) -> [received_count, total, msg]
        self._partial: dict[tuple[int, int], list] = {}
        self.messages_sent = 0
        self.messages_received = 0
        self.bytes_sent = 0

    # ------------------------------------------------------------------
    # Sending
    # ------------------------------------------------------------------
    def send(
        self,
        dst: int,
        tag: int,
        payload: Any,
        nbytes: int | None = None,
        trace_ref: str | None = None,
    ) -> Generator:
        """Send ``payload`` to task ``dst`` under ``tag`` (blocking-submit).

        ``nbytes`` defaults to ``payload.nbytes`` (PackBuffer) and must be
        given for raw payloads.  Returns after the send overhead has been
        charged; delivery is asynchronous, as in PVM.  ``trace_ref``
        optionally tags the message (and every frame it fragments into)
        with a content-addressed causal-lineage id for the trace bus.
        """
        nbytes = self._resolve_nbytes(payload, nbytes)
        yield Compute(self.vm.overheads.send_cost(nbytes))
        self._submit(dst, tag, payload, nbytes, trace_ref=trace_ref)
        yield from self._backpressure()

    def mcast(
        self,
        dsts: Iterable[int],
        tag: int,
        payload: Any,
        nbytes: int | None = None,
        trace_ref: str | None = None,
    ) -> Generator:
        """Multicast: pack once, unicast to each destination (PVM semantics).

        The paper's island GA uses this to broadcast migrants to every
        other deme — note the cost grows linearly in the destination count,
        which is what limits the synchronous GA's scaling past 8 nodes.
        """
        dsts = [d for d in dsts if d != self.tid]
        nbytes = self._resolve_nbytes(payload, nbytes)
        cost = self.vm.overheads.send_cost(nbytes) + self.vm.overheads.mcast_per_dest * max(
            0, len(dsts) - 1
        )
        yield Compute(cost)
        if self._hw_multicast_eligible(dsts, payload):
            self._submit_broadcast(dsts, tag, payload, nbytes, trace_ref=trace_ref)
        else:
            for dst in dsts:
                self._submit(dst, tag, payload, nbytes, trace_ref=trace_ref)
        yield from self._backpressure()

    def _hw_multicast_eligible(self, dsts: list[int], payload: Any) -> bool:
        """True when one BROADCAST frame can stand in for the unicast fan-out.

        Requires the VM's ``hw_multicast`` opt-in (switched fabrics with a
        multicast tree), a destination set covering every other task (a
        broadcast reaches *all* adapters — a partial set would leak), and a
        non-PackBuffer payload (PackBuffers carry a shared unpack cursor;
        concurrent receivers would race on it).
        """
        return (
            self.vm.hw_multicast
            and len(dsts) > 1
            and not isinstance(payload, PackBuffer)
            and set(dsts) == set(self.vm.tasks) - {self.tid}
        )

    def _backpressure(self) -> Generator:
        """Block until the egress queue drains below the send window.

        Models PVM's blocking ``write()`` on a full UDP socket buffer: a
        sender on a saturated shared Ethernet cannot generate messages
        faster than the medium drains them.  This is the transport-level
        half of the positive-feedback loop §3.1 describes for fully
        asynchronous GAs — without it an asynchronous program could flood
        an unbounded queue for free, which no real system allows.
        """
        adapter = self.vm.network.adapters.get(self.tid)
        if adapter is None:
            return
        window = self.vm.send_window
        while adapter.queue_len > window:
            yield WaitSignal(adapter.drain_signal)

    def _resolve_nbytes(self, payload: Any, nbytes: int | None) -> int:
        if nbytes is None:
            if isinstance(payload, PackBuffer):
                return payload.nbytes
            raise ValueError("nbytes is required for non-PackBuffer payloads")
        return nbytes

    def _submit(
        self,
        dst: int,
        tag: int,
        payload: Any,
        nbytes: int,
        trace_ref: str | None = None,
    ) -> None:
        if dst not in self.vm.tasks:
            raise KeyError(f"send to unknown task {dst}")
        msg = Message(
            src=self.tid, dst=dst, tag=tag, payload=payload, nbytes=nbytes,
            send_time=self.vm.kernel.now, trace_ref=trace_ref,
        )
        self.messages_sent += 1
        self.bytes_sent += nbytes
        observer = self.vm.observer
        if observer is not None:
            observer.on_send(self.tid, dst, tag, msg.msg_id, self.vm.kernel.now)
        self.vm._transmit(msg)

    def _submit_broadcast(
        self,
        dsts: list[int],
        tag: int,
        payload: Any,
        nbytes: int,
        trace_ref: str | None = None,
    ) -> None:
        """One BROADCAST submission standing in for len(dsts) unicasts.

        Accounting stays in *logical* messages (one per destination) so
        metrics are comparable across the unicast and hw-multicast paths;
        only the wire traffic changes.
        """
        msg = Message(
            src=self.tid, dst=BROADCAST, tag=tag, payload=payload, nbytes=nbytes,
            send_time=self.vm.kernel.now, trace_ref=trace_ref,
        )
        self.messages_sent += len(dsts)
        self.bytes_sent += nbytes * len(dsts)
        observer = self.vm.observer
        if observer is not None:
            for dst in dsts:
                observer.on_send(self.tid, dst, tag, msg.msg_id, self.vm.kernel.now)
        self.vm._transmit(msg)

    # ------------------------------------------------------------------
    # Receiving
    # ------------------------------------------------------------------
    def _pop_match(self, src: int, tag: int) -> Message | None:
        for i, msg in enumerate(self.mailbox):
            if msg.matches(src, tag):
                popped = self.mailbox.pop(i)
                observer = self.vm.observer
                if observer is not None:
                    # Consumption, not mailbox arrival, is the receive
                    # event: a happens-before edge only exists once the
                    # receiving *process* has folded the message in.
                    observer.on_recv(self.tid, popped, self.vm.kernel.now)
                return popped
        return None

    def recv(self, src: int = ANY_SOURCE, tag: int = ANY_TAG) -> Generator:
        """Blocking receive; returns the earliest matching message."""
        while True:
            msg = self._pop_match(src, tag)
            if msg is not None:
                yield Compute(self.vm.overheads.recv_cost(msg.nbytes))
                self.messages_received += 1
                if isinstance(msg.payload, PackBuffer):
                    msg.payload.rewind()
                return msg
            yield WaitSignal(self.mail_signal)

    def nrecv(self, src: int = ANY_SOURCE, tag: int = ANY_TAG) -> Message | None:
        """Non-blocking receive (``pvm_nrecv``): a matching message or None.

        Does not charge receive overhead itself — callers that consume a
        message should charge :meth:`consume_cost` (the asynchronous
        applications do this once per drained batch).
        """
        msg = self._pop_match(src, tag)
        if msg is not None:
            self.messages_received += 1
            if isinstance(msg.payload, PackBuffer):
                msg.payload.rewind()
        return msg

    def consume_cost(self, msg: Message) -> float:
        """CPU cost a caller should charge for a message taken via nrecv."""
        return self.vm.overheads.recv_cost(msg.nbytes)

    def probe(self, src: int = ANY_SOURCE, tag: int = ANY_TAG) -> bool:
        """True if a matching message is waiting (``pvm_probe``)."""
        return any(m.matches(src, tag) for m in self.mailbox)

    def pending(self, src: int = ANY_SOURCE, tag: int = ANY_TAG) -> int:
        """Number of matching messages waiting."""
        return sum(1 for m in self.mailbox if m.matches(src, tag))

    # ------------------------------------------------------------------
    # Barrier
    # ------------------------------------------------------------------
    def barrier(self, group: Iterable[int]) -> Generator:
        """Group barrier: returns when every tid in ``group`` has entered.

        Coordinator-based, as in PVM groups: the lowest tid gathers one
        message from every other member, then multicasts the release.  The
        synchronous GA and BN programs pay this cost every generation /
        sample, which is precisely the overhead `Global_Read` with age 0
        eliminates (§5, "speedups for Global_Read with age = 0").
        """
        members = sorted(set(group))
        if self.tid not in members:
            raise ValueError(f"task {self.tid} not in barrier group {members}")
        if len(members) == 1:
            return
        coord = members[0]
        buf = PackBuffer().pkint(self.tid)
        if self.tid == coord:
            for _ in range(len(members) - 1):
                yield from self.recv(tag=BARRIER_TAG)
            yield from self.mcast(members[1:], BARRIER_RELEASE_TAG, PackBuffer().pkint(coord))
        else:
            yield from self.send(coord, BARRIER_TAG, buf)
            yield from self.recv(src=coord, tag=BARRIER_RELEASE_TAG)

    # ------------------------------------------------------------------
    # Frame-level plumbing (called by the VM)
    # ------------------------------------------------------------------
    def _on_frame(self, frame: Frame) -> None:
        msg_id, frag_idx, n_frags, msg = frame.payload
        if msg.dst == BROADCAST:
            if msg.src == self.tid:
                return
            # hw multicast: rebind to this receiver so mailbox state
            # (dst, arrival_time) is never shared across tasks
            msg = replace(msg, dst=self.tid)
        elif msg.dst != self.tid:
            return  # broadcast link frame not for this task
        key = (msg.src, msg_id)
        entry = self._partial.setdefault(key, [0, n_frags, msg])
        entry[0] += 1
        if entry[0] == entry[1]:
            del self._partial[key]
            msg.arrival_time = self.vm.kernel.now
            # insert preserving msg_id order per source => pairwise FIFO
            self.mailbox.append(msg)
            self.mail_signal.fire()


class VirtualMachine:
    """The PVM "virtual machine": task registry over one network."""

    def __init__(
        self,
        kernel: Kernel,
        network: Network,
        overheads: PvmOverheads | None = None,
        send_window: int = 16,
        hw_multicast: bool = False,
    ) -> None:
        self.kernel = kernel
        self.network = network
        self.overheads = overheads or PvmOverheads()
        #: max egress frames in flight before sends block (socket buffer)
        self.send_window = send_window
        #: opt-in: eligible mcasts ride the fabric's multicast tree as one
        #: BROADCAST frame (see Task._hw_multicast_eligible)
        self.hw_multicast = hw_multicast
        self.tasks: dict[int, Task] = {}
        #: optional message-event observer (``on_send(src, dst, tag,
        #: msg_id, time)`` / ``on_recv(tid, msg, time)``) — the
        #: happens-before race classifier attaches here to see every
        #: send/consume edge, including barrier traffic
        self.observer: Any = None
        try:
            self._mtu = int(network.config.max_payload)  # type: ignore[attr-defined]
        except AttributeError:
            self._mtu = 1500

    def add_task(self, node_id: int, name: str | None = None) -> Task:
        """Create the task living on ``node_id`` and attach it to the net."""
        if node_id in self.tasks:
            raise ValueError(f"node {node_id} already has a task")
        task = Task(self, node_id, name or f"task-{node_id}")
        self.tasks[node_id] = task
        self.network.attach(node_id, task._on_frame)
        return task

    def _transmit(self, msg: Message) -> None:
        """Fragment a message into MTU-sized frames and hand to the link."""
        total = msg.nbytes + self.overheads.header_bytes
        n_frags = max(1, -(-total // self._mtu))  # ceil division
        remaining = total
        adapter = self.network.adapters[msg.src]
        for idx in range(n_frags):
            size = min(self._mtu, remaining)
            remaining -= size
            frame = Frame(
                src=msg.src,
                dst=msg.dst,
                size_bytes=size,
                payload=(msg.msg_id, idx, n_frags, msg),
                kind="pvm",
                trace_ref=msg.trace_ref,
            )
            adapter.send(frame)

    def total_messages(self) -> int:
        """Total messages sent through this VM."""
        return sum(t.messages_sent for t in self.tasks.values())
