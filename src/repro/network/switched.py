"""Switched fabrics: store-and-forward trees with per-link bandwidth.

The paper stops at 8 SP2 nodes on a shared 10 Mbps Ethernet; scaling the
island workloads to thousands of demes (ROADMAP item 2) needs an
interconnect whose aggregate bandwidth grows with the node count.  This
module models that family:

``single``
    every node hangs off one store-and-forward switch (a leaf of the
    other two fabrics, and the n-port generalisation of
    :class:`~repro.network.switch.SwitchNetwork`'s crossbar);
``hierarchical``
    a radix-ary tree of switches — edge switches serve ``radix`` nodes
    each, aggregation switches serve ``radix`` edge switches, up to a
    single root.  Every link runs at ``link_bandwidth_bps``, so trunks
    are oversubscribed ``radix``:1 per level — the classic cheap
    datacenter tree;
``fat-tree``
    the same topology with Leiserson-style *fattened* trunks: the link
    from a level-``l`` switch to its parent carries ``radix**(l+1)``
    times the host bandwidth, preserving full bisection.  (We model the
    fat links directly rather than as a Clos of parallel thin links —
    the delivered behaviour is the same without per-path routing state.)

Model
-----
Store-and-forward: a frame is fully serialised onto each link of its
path in turn.  Every link direction keeps a *busy-until* clock; hop
``k``'s transmission starts at ``max(arrival_k, busy_until[link_k])``,
advances the clock by the frame's wire time at that link's bandwidth,
and the frame reaches the next switch one ``link_latency`` (plus a
``switch_latency`` forwarding decision) later.  All of it is pure
arithmetic on the busy clocks — no arbitration randomness, exactly one
kernel event per delivery, O(path length) work per frame with the path
length fixed by the fabric depth (not the node count): the O(1)-per-
message hot path the 64 → 4096 deme sweep requires (``fabric.*`` keys
in the bench trajectory).

Broadcast frames are replicated *in the tree*, not at the sender: the
frame climbs to the root once, then each switch forwards one copy down
every child link.  Each link carries the frame exactly once, so an
all-to-all migrant broadcast costs O(links) instead of O(destinations)
serialised on the sender's egress — the difference between a multicast
tree and the SP2 switch model's per-destination replication.

Determinism: no RNG anywhere; children are flooded in index order.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.network.base import Adapter, Network
from repro.network.frame import BROADCAST, Frame
from repro.sim.kernel import Kernel

FABRICS = ("single", "hierarchical", "fat-tree")


@dataclass(frozen=True)
class SwitchedConfig:
    """Parameters of a switched fabric (defaults: 1 Gbps edge links)."""

    fabric: str = "hierarchical"
    #: hosts per edge switch and child switches per aggregation switch
    radix: int = 16
    link_bandwidth_bps: float = 1e9
    #: one-way propagation per link
    link_latency: float = 2e-6
    #: store-and-forward decision time charged per switch traversed
    switch_latency: float = 1e-6
    #: per-frame packetisation overhead on every link
    overhead_bytes: int = 18
    max_payload: int = 1500

    def __post_init__(self) -> None:
        if self.fabric not in FABRICS:
            raise ValueError(f"unknown fabric {self.fabric!r}; expected one of {FABRICS}")
        if self.radix < 2:
            raise ValueError("radix must be >= 2")
        if self.link_bandwidth_bps <= 0:
            raise ValueError("link bandwidth must be positive")

    def trunk_bandwidth(self, level: int) -> float:
        """Bandwidth of a trunk from a level-``level`` switch to its parent.

        ``hierarchical`` keeps every link at the host rate (oversubscribed
        trunks); ``fat-tree`` fattens the trunk to carry its whole subtree
        (``radix**(level+1)`` hosts) at full rate.
        """
        if self.fabric == "fat-tree":
            return self.link_bandwidth_bps * float(self.radix ** (level + 1))
        return self.link_bandwidth_bps

    def tx_time(self, payload_bytes: int, bandwidth_bps: float | None = None) -> float:
        """Wire time of one frame at ``bandwidth_bps`` (default: host rate)."""
        if payload_bytes > self.max_payload:
            raise ValueError(
                f"payload {payload_bytes} exceeds fabric MTU {self.max_payload}"
            )
        bw = self.link_bandwidth_bps if bandwidth_bps is None else bandwidth_bps
        return (self.overhead_bytes + payload_bytes) * 8.0 / bw

    def min_latency(self, n_nodes: int = 2) -> float:
        """Minimum cross-node frame latency on an idle fabric.

        The closest pair of distinct nodes shares an edge switch (radix
        >= 2), so the minimum path is host-up, one switch, host-down —
        independent of fabric kind and node count.  This is the
        conservative-PDES lookahead :func:`repro.sim.parallel.plan.
        lookahead_of` feeds the bounded-lag kernel: unlike the shared
        Ethernet (whose arbitration gives zero frame-level lookahead
        past the minimum frame), it is a *real* per-link latency floor.
        """
        tx = self.tx_time(0)
        return 2.0 * (tx + self.link_latency) + self.switch_latency


class SwitchedNetwork(Network):
    """Store-and-forward switch tree (see module docstring)."""

    def __init__(
        self,
        kernel: Kernel,
        config: SwitchedConfig | None = None,
        name: str = "fabric",
    ) -> None:
        super().__init__(kernel, name)
        self.config = config or SwitchedConfig()
        #: busy-until clock per directed link, keyed by
        #: ("h", node, dir) for host links and ("t", level, index, dir)
        #: for trunk links (dir is "u"/"d"); absent = idle since t=0
        self._busy: dict[tuple, float] = {}
        #: deliveries scheduled but not yet executed (deadlock diagnostics)
        self._in_flight = 0

    # -- topology arithmetic -------------------------------------------
    def _edge_of(self, node_id: int) -> int:
        if self.config.fabric == "single":
            return 0
        return node_id // self.config.radix

    def _n_edges(self) -> int:
        if self.config.fabric == "single" or not self.adapters:
            return 1
        return max(self.adapters) // self.config.radix + 1

    def _levels(self) -> int:
        """Trunk levels above the edge switches (0 = edge switches only)."""
        n_edges = self._n_edges()
        levels = 0
        span = 1
        while span < n_edges:
            span *= self.config.radix
            levels += 1
        return levels

    def path_hops(self, src: int, dst: int) -> list[tuple[tuple, float]]:
        """The (link_key, bandwidth) sequence a unicast frame traverses."""
        cfg = self.config
        hops: list[tuple[tuple, float]] = [(("h", src, "u"), cfg.link_bandwidth_bps)]
        up, down = self._edge_of(src), self._edge_of(dst)
        climb: list[tuple[tuple, float]] = []
        descend: list[tuple[tuple, float]] = []
        level = 0
        while up != down:
            climb.append((("t", level, up, "u"), cfg.trunk_bandwidth(level)))
            descend.append((("t", level, down, "d"), cfg.trunk_bandwidth(level)))
            up //= cfg.radix
            down //= cfg.radix
            level += 1
        hops += climb + list(reversed(descend))
        hops.append((("h", dst, "d"), cfg.link_bandwidth_bps))
        return hops

    def _obs_fields(self, frame: Frame, dst: int) -> dict:
        """Annotate traced deliveries with fabric name, hop count and
        broadcast membership (only computed when a bus is attached;
        ``path_hops`` is O(fabric depth), same as the delivery itself)."""
        return {
            "fabric": self.config.fabric,
            "hops": len(self.path_hops(frame.src, dst)),
            "bcast": frame.dst == BROADCAST,
        }

    def min_frame_latency(self, src: int, dst: int, size_bytes: int) -> float:
        """Analytic zero-contention latency of one frame (test oracle)."""
        cfg = self.config
        hops = self.path_hops(src, dst)
        total = sum(cfg.tx_time(size_bytes, bw) + cfg.link_latency for _, bw in hops)
        return total + cfg.switch_latency * (len(hops) - 1)

    # -- scheduling -----------------------------------------------------
    def _hop(
        self, key: tuple, bw: float, arrival: float, size: int
    ) -> tuple[float, float]:
        """Serialise one frame onto ``key``; returns (start, end)."""
        start = max(arrival, self._busy.get(key, 0.0))
        done = start + self.config.tx_time(size, bw)
        self._busy[key] = done
        return start, done

    def _enqueue(self, adapter: Adapter, frame: Frame) -> None:
        cfg = self.config
        if frame.size_bytes > cfg.max_payload:
            raise ValueError(
                f"frame payload {frame.size_bytes} B exceeds fabric MTU "
                f"{cfg.max_payload} B — fragment at the PVM layer"
            )
        frame.enqueue_time = self.kernel.now
        destinations = self._destinations(frame)
        if len(destinations) > 1:
            self.stats.broadcasts += 1
            self._multicast(frame)
            return
        dst = destinations[0]
        t = self.kernel.now
        first = True
        for key, bw in self.path_hops(frame.src, dst):
            start, done = self._hop(key, bw, t, frame.size_bytes)
            if first:
                frame.tx_start_time = start
                self.stats.queueing_delay.add(frame.queueing_delay)
                first = False
            t = done + cfg.link_latency + cfg.switch_latency
        t -= cfg.switch_latency  # the last hop ends at a host, not a switch
        self._account(frame.size_bytes)
        self._schedule_delivery(frame, dst, t)

    def _multicast(self, frame: Frame) -> None:
        """Tree replication: once up to the root, then down every branch."""
        cfg = self.config
        size = frame.size_bytes
        start, t = self._hop(
            ("h", frame.src, "u"), cfg.link_bandwidth_bps, self.kernel.now, size
        )
        frame.tx_start_time = start
        self.stats.queueing_delay.add(frame.queueing_delay)
        t += cfg.link_latency + cfg.switch_latency
        idx = self._edge_of(frame.src)
        for level in range(self._levels()):
            _, t = self._hop(("t", level, idx, "u"), cfg.trunk_bandwidth(level), t, size)
            t += cfg.link_latency + cfg.switch_latency
            idx //= cfg.radix
        self._flood_down(self._levels(), idx, t, frame)

    def _flood_down(self, level: int, idx: int, t: float, frame: Frame) -> None:
        cfg = self.config
        size = frame.size_bytes
        if level == 0:
            # edge switch: one copy per attached host on this switch
            if cfg.fabric == "single":
                hosts = sorted(self.adapters)
            else:
                lo = idx * cfg.radix
                hosts = [
                    n for n in range(lo, lo + cfg.radix) if n in self.adapters
                ]
            for node in hosts:
                if node == frame.src:
                    continue
                _, done = self._hop(("h", node, "d"), cfg.link_bandwidth_bps, t, size)
                self._account(size)
                self._schedule_delivery(frame, node, done + cfg.link_latency)
            return
        child_span = cfg.radix ** (level - 1)  # edge switches per child subtree
        n_edges = self._n_edges()
        for child in range(idx * cfg.radix, (idx + 1) * cfg.radix):
            if child * child_span >= n_edges:
                break  # no edge switches (hence no hosts) in this subtree
            _, done = self._hop(
                ("t", level - 1, child, "d"), cfg.trunk_bandwidth(level - 1), t, size
            )
            self._flood_down(
                level - 1, child, done + cfg.link_latency + cfg.switch_latency, frame
            )

    def _account(self, size: int) -> None:
        self.stats.frames_sent += 1
        self.stats.bytes_sent += size
        self.stats.wire_bytes_sent += self.config.overhead_bytes + size
        self.stats.busy_time += self.config.tx_time(size)

    def _schedule_delivery(self, frame: Frame, dst: int, at: float) -> None:
        self._in_flight += 1
        self.kernel.schedule_at(at, self._finish_delivery, frame, dst)

    def _finish_delivery(self, frame: Frame, dst: int) -> None:
        self._in_flight -= 1
        self._deliver(frame, dst)

    def pending_frames(self) -> int:
        """Deliveries in flight (frames never queue in adapter queues)."""
        return self._in_flight
