"""Network substrate: link-level models under the PVM messaging layer.

The paper's platform was an IBM SP2 whose nodes were connected both by a
10 Mbps shared Ethernet (used for all reported results) and by the SP2's
high-performance switch.  This package models both, plus the background
network-loader used in the paper's loaded-network experiments (Figure 4)
and the *warp* network-load metric of Heddaya et al. used in §4.3.

Models transport :class:`~repro.network.frame.Frame` objects only; message
fragmentation/reassembly above the MTU is the job of :mod:`repro.pvm`.
"""

from repro.network.frame import BROADCAST, Frame
from repro.network.stats import LinkStats
from repro.network.base import Adapter, Network
from repro.network.ethernet import EthernetConfig, EthernetNetwork
from repro.network.switch import SwitchConfig, SwitchNetwork
from repro.network.switched import FABRICS, SwitchedConfig, SwitchedNetwork
from repro.network.loader import NetworkLoader, LoaderConfig
from repro.network.warp import WarpMeter

__all__ = [
    "BROADCAST",
    "Frame",
    "LinkStats",
    "Adapter",
    "Network",
    "EthernetConfig",
    "EthernetNetwork",
    "SwitchConfig",
    "SwitchNetwork",
    "FABRICS",
    "SwitchedConfig",
    "SwitchedNetwork",
    "NetworkLoader",
    "LoaderConfig",
    "WarpMeter",
]
