"""Counters and derived statistics for link models.

Kept deliberately cheap: plain counters plus a Welford-style accumulator
for delays, updated O(1) per frame, so statistics never distort benchmark
timing.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class RunningStat:
    """Numerically stable running mean / max / count (Welford)."""

    count: int = 0
    mean: float = 0.0
    _m2: float = 0.0
    max: float = 0.0

    def add(self, x: float) -> None:
        """Fold one sample into the running mean/variance (Welford)."""
        self.count += 1
        delta = x - self.mean
        self.mean += delta / self.count
        self._m2 += delta * (x - self.mean)
        if x > self.max:
            self.max = x

    @property
    def variance(self) -> float:
        """Sample variance (0 with fewer than two samples)."""
        return self._m2 / self.count if self.count > 1 else 0.0

    @property
    def std(self) -> float:
        """Sample standard deviation."""
        return self.variance**0.5


@dataclass
class LinkStats:
    """Aggregate statistics for one network instance."""

    frames_sent: int = 0
    bytes_sent: int = 0
    wire_bytes_sent: int = 0  # includes link-level overhead
    broadcasts: int = 0
    contended_acquisitions: int = 0  # >1 adapter wanted the medium
    busy_time: float = 0.0  # seconds the medium spent transmitting
    queueing_delay: RunningStat = field(default_factory=RunningStat)
    latency: RunningStat = field(default_factory=RunningStat)

    def utilization(self, now: float) -> float:
        """Fraction of elapsed simulated time the medium was busy."""
        return self.busy_time / now if now > 0 else 0.0

    def summary(self, now: float) -> dict:
        """Frame/byte counts, latency stats and utilization at time ``now``."""
        return {
            "frames_sent": self.frames_sent,
            "bytes_sent": self.bytes_sent,
            "wire_bytes_sent": self.wire_bytes_sent,
            "broadcasts": self.broadcasts,
            "contended_acquisitions": self.contended_acquisitions,
            "utilization": self.utilization(now),
            "mean_queueing_delay": self.queueing_delay.mean,
            "max_queueing_delay": self.queueing_delay.max,
            "mean_latency": self.latency.mean,
            "max_latency": self.latency.max,
        }
