"""Common adapter/network plumbing shared by the link models.

A :class:`Network` owns the set of attached :class:`Adapter` objects.  The
layer above (PVM) obtains an adapter per node via :meth:`Network.attach`,
sends frames through it, and receives frames through the deliver callback
it registered.  Concrete networks implement only the scheduling logic
(:meth:`Network._enqueue`).
"""

from __future__ import annotations

from collections import deque
from typing import Callable

from repro.network.frame import BROADCAST, Frame
from repro.network.stats import LinkStats
from repro.sim.kernel import Kernel
from repro.sim.process import Signal


class Adapter:
    """One node's attachment point to a network.

    ``drain_signal`` fires whenever a queued frame starts transmitting;
    senders implementing backpressure (PVM's blocking send on a full
    socket buffer) wait on it until :attr:`queue_len` falls below their
    window.
    """

    def __init__(
        self, network: "Network", node_id: int, deliver: Callable[[Frame], None]
    ) -> None:
        self.network = network
        self.node_id = node_id
        self.deliver = deliver
        self.queue: deque[Frame] = deque()
        self.drain_signal = Signal(f"adapter{node_id}.drain")
        self.frames_received = 0

    def send(self, frame: Frame) -> None:
        """Hand a frame to the link for (eventual) transmission."""
        if frame.src != self.node_id:
            raise ValueError(
                f"adapter {self.node_id} cannot send frame with src={frame.src}"
            )
        self.network._enqueue(self, frame)

    @property
    def queue_len(self) -> int:
        """Frames waiting in this adapter's egress queue."""
        return len(self.queue)

    def _receive(self, frame: Frame) -> None:
        self.frames_received += 1
        self.deliver(frame)


class Network:
    """Base class: adapter registry, delivery fan-out, statistics."""

    def __init__(self, kernel: Kernel, name: str = "net") -> None:
        self.kernel = kernel
        self.name = name
        self.adapters: dict[int, Adapter] = {}
        self.stats = LinkStats()
        #: observers called as fn(frame) on every delivery (warp meter etc.)
        self.delivery_observers: list[Callable[[Frame], None]] = []

    def attach(self, node_id: int, deliver: Callable[[Frame], None]) -> Adapter:
        """Attach a node; ``deliver`` is invoked for each arriving frame."""
        if node_id in self.adapters:
            raise ValueError(f"node {node_id} already attached to {self.name}")
        adapter = Adapter(self, node_id, deliver)
        self.adapters[node_id] = adapter
        return adapter

    def observe_deliveries(self, fn: Callable[[Frame], None]) -> None:
        """Register an observer called with every delivered frame."""
        self.delivery_observers.append(fn)

    # -- delivery ------------------------------------------------------
    def _deliver(self, frame: Frame, dst: int) -> None:
        frame.deliver_time = self.kernel.now
        self.stats.latency.add(frame.latency)
        for obs in self.delivery_observers:
            obs(frame)
        bus = self.kernel.obs
        if bus is not None:
            # enqueue time rides along so warp (arrival-gap / send-gap
            # per stream, §4.3) is recomputable from the trace alone
            fields: dict = dict(
                src=frame.src, frame_kind=frame.kind,
                size=frame.size_bytes, enq=frame.enqueue_time,
            )
            if frame.trace_ref is not None:
                # content-addressed lineage ref (e.g. "migrants.0@7") set
                # by the sender; joins this delivery to its dsm.write
                fields["ref"] = frame.trace_ref
            fields.update(self._obs_fields(frame, dst))
            bus.emit("net.deliver", node=dst, **fields)
        self.adapters[dst]._receive(frame)

    def _obs_fields(self, frame: Frame, dst: int) -> dict:
        """Extra ``net.deliver`` trace fields for this link model.

        Only called when a bus is attached; concrete networks override
        to annotate deliveries (the switched fabric adds fabric name,
        hop count and broadcast membership).
        """
        return {}

    def _destinations(self, frame: Frame) -> list[int]:
        if frame.dst == BROADCAST:
            return [n for n in self.adapters if n != frame.src]
        if frame.dst not in self.adapters:
            raise KeyError(f"frame destination {frame.dst} not attached to {self.name}")
        return [frame.dst]

    def flush_queue(self, node_id: int) -> int:
        """Discard ``node_id``'s queued egress frames; returns the count.

        The only sanctioned way to empty an adapter queue from outside
        the link model (the crash injector uses it) — concrete networks
        that keep derived per-queue state override this to stay in sync.
        """
        adapter = self.adapters.get(node_id)
        if adapter is None:
            return 0
        lost = len(adapter.queue)
        adapter.queue.clear()
        return lost

    # -- to be provided by concrete models ------------------------------
    def _enqueue(self, adapter: Adapter, frame: Frame) -> None:
        raise NotImplementedError

    def pending_frames(self) -> int:
        """Frames queued (not yet fully transmitted) across all adapters."""
        return sum(len(a.queue) for a in self.adapters.values())
