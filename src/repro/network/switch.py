"""High-performance switch model (the SP2's other interconnect).

The paper reports all results on the Ethernet, but §4.1 notes the SP2 also
had its high-speed switch and predicts similar benefits for applications
with higher communication demands.  We model the switch so that prediction
can be tested (see the ablation benchmarks).

Model: full-duplex point-to-point links into a non-blocking crossbar.
Each node has an *egress* link server and an *ingress* link server, both
serialising at ``link_bandwidth_bps``; a fixed ``switch_latency`` separates
them.  Distinct node pairs therefore transfer concurrently — the defining
contrast with the shared Ethernet.  Broadcast is replicated per
destination on the sender's egress link (the SP2 switch had no hardware
multicast).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.network.base import Adapter, Network
from repro.network.frame import Frame
from repro.sim.kernel import Kernel


@dataclass(frozen=True)
class SwitchConfig:
    """Parameters of the switch model (defaults: SP2-class TB2 switch)."""

    link_bandwidth_bps: float = 320e6  # 40 MB/s per link
    switch_latency: float = 5e-7  # hardware crossbar latency
    #: per-frame fixed overhead (packetisation headers)
    overhead_bytes: int = 16
    max_payload: int = 65536

    def tx_time(self, payload_bytes: int) -> float:
        """Wire time for one frame of ``payload_bytes`` at the link rate."""
        if payload_bytes > self.max_payload:
            raise ValueError(
                f"payload {payload_bytes} exceeds switch MTU {self.max_payload}"
            )
        return (self.overhead_bytes + payload_bytes) * 8.0 / self.link_bandwidth_bps


class SwitchNetwork(Network):
    """Non-blocking crossbar with per-node full-duplex links."""

    def __init__(
        self,
        kernel: Kernel,
        config: SwitchConfig | None = None,
        name: str = "switch",
    ) -> None:
        super().__init__(kernel, name)
        self.config = config or SwitchConfig()
        self._egress_busy_until: dict[int, float] = {}
        self._ingress_busy_until: dict[int, float] = {}

    def attach(self, node_id, deliver):  # type: ignore[override]
        """Attach a node and initialise its per-port busy clocks."""
        adapter = super().attach(node_id, deliver)
        self._egress_busy_until[node_id] = 0.0
        self._ingress_busy_until[node_id] = 0.0
        return adapter

    def _enqueue(self, adapter: Adapter, frame: Frame) -> None:
        frame.enqueue_time = self.kernel.now
        destinations = self._destinations(frame)
        if len(destinations) > 1:
            self.stats.broadcasts += 1
        tx = self.config.tx_time(frame.size_bytes)
        now = self.kernel.now
        first_leg = True
        for dst in destinations:
            # Egress serialisation (replicated copies go out back-to-back).
            start = max(now, self._egress_busy_until[frame.src])
            egress_done = start + tx
            self._egress_busy_until[frame.src] = egress_done
            if first_leg:
                frame.tx_start_time = start
                self.stats.queueing_delay.add(frame.queueing_delay)
                first_leg = False
            # Crossbar + ingress serialisation at the destination.
            arrive = egress_done + self.config.switch_latency
            in_start = max(arrive, self._ingress_busy_until[dst])
            in_done = in_start + tx
            self._ingress_busy_until[dst] = in_done
            self.stats.frames_sent += 1
            self.stats.bytes_sent += frame.size_bytes
            self.stats.wire_bytes_sent += self.config.overhead_bytes + frame.size_bytes
            self.stats.busy_time += tx
            self.kernel.schedule_at(in_done, self._deliver, frame, dst)

    def pending_frames(self) -> int:  # frames never queue in adapter queues here
        """Frames queued on all ports (for deadlock diagnostics)."""
        return 0
