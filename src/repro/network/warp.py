"""The *warp* network-load metric (Park; Heddaya, Park & Sinha).

§4.3 of the paper: "A particular measurement of warp at node *i* with
respect to node *j* is given by the ratio of the difference in arrival
times of two consecutive messages from node *j* to the difference in
their sending times.  Warp measures the rate of change of network load.
The warp measured would be 1 when the network load is stable; warp values
much higher than 1 indicate increasing load on the network."

The meter attaches to a network as a delivery observer and keeps, per
``(receiver, sender)`` stream, the last frame's ``(send, arrival)`` pair;
each new frame yields one warp sample.  Frames whose send times coincide
(the gap denominator would be 0) are skipped, as are non-data frame kinds
if a ``kinds`` filter is given.
"""

from __future__ import annotations

from collections import defaultdict

from repro.network.base import Network
from repro.network.frame import Frame
from repro.network.stats import RunningStat

#: default per-stream raw-sample retention cap (see ``WarpMeter``)
DEFAULT_MAX_STREAM_SAMPLES = 65_536


class WarpMeter:
    """Collects warp samples for every (receiver, sender) message stream.

    Raw-sample retention is bounded: with ``keep_samples`` on, each
    (receiver, sender) stream keeps at most ``max_stream_samples`` raw
    values (the *earliest* samples, matching the causal-prefix policy of
    :class:`repro.obs.bus.TraceBus`); overflow bumps
    :attr:`samples_dropped` instead of growing without limit on long
    runs.  The streaming statistics (:attr:`overall`, :attr:`per_stream`,
    and therefore ``mean_warp``/``max_warp``) fold in *every* sample
    regardless of the cap — only percentile fidelity degrades past it.
    """

    def __init__(
        self,
        kinds: set[str] | None = None,
        keep_samples: bool = False,
        max_stream_samples: int = DEFAULT_MAX_STREAM_SAMPLES,
    ):
        #: restrict measurement to these frame kinds (None = all)
        self.kinds = kinds
        self.keep_samples = keep_samples
        #: per-stream cap on retained raw samples (``keep_samples`` only)
        self.max_stream_samples = max_stream_samples
        #: raw samples discarded because a stream's cap was reached,
        #: mirroring ``TraceBus.dropped`` so truncation is detectable
        self.samples_dropped = 0
        self._last: dict[tuple[int, int], tuple[float, float]] = {}
        self.per_stream: dict[tuple[int, int], RunningStat] = defaultdict(RunningStat)
        self.overall = RunningStat()
        self.samples: list[float] = []
        #: raw samples per (receiver, sender) stream, kept only when
        #: ``keep_samples`` — feeds the per-stream warp percentiles in
        #: the repro.obs metrics snapshot
        self.stream_samples: dict[tuple[int, int], list[float]] = defaultdict(list)

    def attach(self, network: Network) -> "WarpMeter":
        """Register on ``network``; returns self for chaining."""
        network.observe_deliveries(self.observe)
        return self

    def observe(self, frame: Frame) -> None:
        """Delivery observer: fold one frame into the warp statistics.

        Uses the frame's enqueue time as its "sending time" — that is when
        the sender handed the message to the network, which is the quantity
        warp's denominator measures (sender pacing), independent of medium
        acquisition delays that belong in the numerator.
        """
        if self.kinds is not None and frame.kind not in self.kinds:
            return
        key = (frame.dst, frame.src)
        prev = self._last.get(key)
        self._last[key] = (frame.enqueue_time, frame.deliver_time)
        if prev is None:
            return
        send_gap = frame.enqueue_time - prev[0]
        arrival_gap = frame.deliver_time - prev[1]
        if send_gap <= 0:
            return  # coincident sends: warp undefined for this pair
        warp = arrival_gap / send_gap
        self.per_stream[key].add(warp)
        self.overall.add(warp)
        if self.keep_samples:
            stream = self.stream_samples[key]
            if len(stream) < self.max_stream_samples:
                self.samples.append(warp)
                stream.append(warp)
            else:
                self.samples_dropped += 1

    @property
    def mean_warp(self) -> float:
        """Mean warp across all streams (1.0 = stable network)."""
        return self.overall.mean

    @property
    def max_warp(self) -> float:
        """Largest warp sample observed across all streams."""
        return self.overall.max

    def stream_means(self) -> dict[tuple[int, int], float]:
        """Per-(receiver, sender) mean warp."""
        return {k: v.mean for k, v in self.per_stream.items()}
