"""Shared 10 Mbps Ethernet model (the paper's reported interconnect).

Model
-----
A single shared medium transmits one frame at a time.  Each adapter keeps a
FIFO egress queue.  Whenever the medium goes idle, an *arbitration* step
picks the next sender among adapters with queued frames:

* exactly one contender: it acquires the medium after the inter-frame gap;
* ``k > 1`` contenders: the acquisition is *contended* — the winner is
  chosen round-robin (fairness, as CSMA/CD achieves statistically) and a
  contention penalty is charged, drawn uniformly from ``[0, min(k,
  contention_cap)]`` backoff slots.  The penalty grows with the number of
  contenders (collision-resolution rounds), while carrier sense and the
  capture effect keep saturated 10BASE Ethernet at ~70–80 % efficiency —
  which this linear model reproduces for MTU-sized frames.

This "contention-FIFO" abstraction deliberately does not simulate
individual collision fragments; what the paper's results depend on is (a)
serialization at 10 Mbps, (b) queueing delay that grows nonlinearly with
offered load, and (c) a penalty for simultaneous senders — all of which
the model captures (DESIGN.md §2).  Broadcast frames cost one transmission
and are delivered to every other adapter, as on a real shared bus.

Frame overhead matches real Ethernet: 8 B preamble + 14 B header + 4 B CRC
and a 46-byte minimum payload.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.network.base import Adapter, Network
from repro.network.frame import Frame
from repro.sim.kernel import Kernel


@dataclass(frozen=True)
class EthernetConfig:
    """Parameters of the shared-medium model (defaults: 10BASE Ethernet)."""

    bandwidth_bps: float = 10e6
    #: one-way propagation delay across the segment
    prop_delay: float = 25.6e-6
    #: inter-frame gap (9.6 us at 10 Mbps)
    ifg: float = 9.6e-6
    #: 512-bit slot time at 10 Mbps
    slot_time: float = 51.2e-6
    #: preamble + MAC header + CRC, charged per frame
    overhead_bytes: int = 26
    min_payload: int = 46
    #: MTU — the PVM layer fragments above this
    max_payload: int = 1500
    #: cap on the contention penalty window, in backoff slots
    contention_cap: int = 8

    def tx_time(self, payload_bytes: int) -> float:
        """Wire time for one frame carrying ``payload_bytes``."""
        if payload_bytes > self.max_payload:
            raise ValueError(
                f"payload {payload_bytes} exceeds MTU {self.max_payload}; "
                "fragment at the messaging layer"
            )
        wire = self.overhead_bytes + max(payload_bytes, self.min_payload)
        return wire * 8.0 / self.bandwidth_bps


class EthernetNetwork(Network):
    """Deterministic shared-Ethernet simulation (see module docstring)."""

    def __init__(
        self,
        kernel: Kernel,
        config: EthernetConfig | None = None,
        name: str = "eth",
    ) -> None:
        super().__init__(kernel, name)
        self.config = config or EthernetConfig()
        self._rng = kernel.rng.get(f"{name}.backoff")
        self._transmitting = False
        self._arbitration_pending = False
        self._last_winner = -1
        #: node ids with a non-empty egress queue, maintained incrementally
        #: so arbitration costs O(contenders), not O(attached adapters)
        self._backlog: set[int] = set()

    # ------------------------------------------------------------------
    def _enqueue(self, adapter: Adapter, frame: Frame) -> None:
        if frame.size_bytes > self.config.max_payload:
            raise ValueError(
                f"frame payload {frame.size_bytes} B exceeds Ethernet MTU "
                f"{self.config.max_payload} B — fragment at the PVM layer"
            )
        frame.enqueue_time = self.kernel.now
        adapter.queue.append(frame)
        self._backlog.add(adapter.node_id)
        self._schedule_arbitration()

    def _schedule_arbitration(self) -> None:
        if self._transmitting or self._arbitration_pending:
            return
        self._arbitration_pending = True
        self.kernel.schedule(0.0, self._arbitrate)

    def _arbitrate(self) -> None:
        self._arbitration_pending = False
        if self._transmitting:
            return
        contenders = self._backlog
        if not contenders:
            return
        delay = self.config.ifg
        if len(contenders) > 1:
            self.stats.contended_acquisitions += 1
            window = min(len(contenders), self.config.contention_cap)
            delay += self.config.slot_time * float(self._rng.uniform(0.0, window))
        winner = self._pick_round_robin(contenders)
        self._last_winner = winner
        self._transmitting = True
        self.kernel.schedule(delay, self._start_tx, winner)

    def _pick_round_robin(self, contenders: "set[int]") -> int:
        """Smallest contender strictly after the last winner, wrapping.

        Scans only the backlogged nodes (usually one or two), matching the
        order the previous ``sorted()``-based scan over every attached
        adapter produced — bit-identical winners at O(contenders) cost.
        """
        last = self._last_winner
        after = [nid for nid in contenders if nid > last]
        return min(after) if after else min(contenders)

    def _start_tx(self, winner: int) -> None:
        adapter = self.adapters[winner]
        if not adapter.queue:  # defensive: queue drained is impossible by design
            self._backlog.discard(winner)
            self._transmitting = False
            self._schedule_arbitration()
            return
        frame = adapter.queue.popleft()
        if not adapter.queue:
            self._backlog.discard(winner)
        adapter.drain_signal.fire()
        frame.tx_start_time = self.kernel.now
        self.stats.queueing_delay.add(frame.queueing_delay)
        tx = self.config.tx_time(frame.size_bytes)
        self.stats.frames_sent += 1
        self.stats.bytes_sent += frame.size_bytes
        self.stats.wire_bytes_sent += self.config.overhead_bytes + max(
            frame.size_bytes, self.config.min_payload
        )
        self.stats.busy_time += tx
        self.kernel.schedule(tx, self._end_tx, frame)

    def flush_queue(self, node_id: int) -> int:
        """Discard queued egress frames, keeping the backlog set in sync."""
        lost = super().flush_queue(node_id)
        if lost:
            self._backlog.discard(node_id)
        return lost

    def _end_tx(self, frame: Frame) -> None:
        self._transmitting = False
        destinations = self._destinations(frame)
        if len(destinations) > 1:
            self.stats.broadcasts += 1
        for dst in destinations:
            self.kernel.schedule(self.config.prop_delay, self._deliver, frame, dst)
        self._schedule_arbitration()
