"""Link-layer frames.

A frame is the unit the link models schedule; it carries an opaque payload
for the layer above (PVM fragments) plus the accounting fields the models
and metrics need.  Payload *size* is explicit rather than derived from the
Python object so the simulation charges realistic wire time for data whose
in-simulator representation is tiny (e.g. a numpy scalar standing for a
packed 8-byte double).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any

#: Destination pseudo-address meaning "every attached adapter except the
#: sender".  On the shared Ethernet a broadcast costs one transmission; on
#: the switch it is replicated per destination.
BROADCAST = -1

_frame_ids = itertools.count()


@dataclass
class Frame:
    """One link-layer frame.

    Attributes
    ----------
    src, dst:
        Attached adapter ids; ``dst`` may be :data:`BROADCAST`.
    size_bytes:
        Payload size on the wire, before link-level overhead (headers,
        preamble) which the link model adds itself.
    payload:
        Opaque object handed to the destination's deliver callback.
    kind:
        Free-form tag ("pvm", "load", ...) used by statistics and tests.
    enqueue_time / tx_start_time / deliver_time:
        Filled in by the link model as the frame progresses; used to
        compute queueing delays and the warp metric.
    trace_ref:
        Optional causal-lineage tag copied from the originating
        :class:`~repro.pvm.message.Message`.  Content-addressed (e.g.
        ``"migrants.0@7"``), *never* an id from a process-global counter,
        so identical-seed runs emit identical traces.  ``None`` unless
        tracing is enabled; carried through to the ``net.deliver`` trace
        event so the span builder can join writes to deliveries.
    """

    src: int
    dst: int
    size_bytes: int
    payload: Any = None
    kind: str = "data"
    frame_id: int = field(default_factory=lambda: next(_frame_ids))
    enqueue_time: float = -1.0
    tx_start_time: float = -1.0
    deliver_time: float = -1.0
    trace_ref: str | None = None

    def __post_init__(self) -> None:
        if self.size_bytes < 0:
            raise ValueError(f"frame size must be >= 0, got {self.size_bytes}")
        if self.src == self.dst:
            raise ValueError(f"frame to self (adapter {self.src}) is not routable")

    @property
    def queueing_delay(self) -> float:
        """Seconds spent waiting for the medium (valid after transmission)."""
        if self.tx_start_time < 0 or self.enqueue_time < 0:
            raise ValueError("frame has not been transmitted yet")
        return self.tx_start_time - self.enqueue_time

    @property
    def latency(self) -> float:
        """Enqueue-to-delivery latency in seconds (valid after delivery)."""
        if self.deliver_time < 0 or self.enqueue_time < 0:
            raise ValueError("frame has not been delivered yet")
        return self.deliver_time - self.enqueue_time
