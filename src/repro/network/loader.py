"""Background-traffic generator ("network loader program", §4.3 / §5.2).

The paper generated 0.5, 1 and 2 Mbps of background load with a loader
program running on two extra SP2 nodes.  This module reproduces it: a
loader drives a Poisson stream of fixed-size frames from one attached node
to another, at a configurable offered load.  Poisson arrivals are the
standard model for uncoordinated background traffic and give the queueing
behaviour (bursts, contention spikes) that makes the loaded-network
results interesting.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.network.base import Network
from repro.network.frame import Frame
from repro.sim.kernel import Kernel


@dataclass(frozen=True)
class LoaderConfig:
    """Offered load and framing of the background traffic."""

    offered_load_bps: float = 1e6
    frame_payload_bytes: int = 1024
    #: loader stops injecting after this simulated time (None = forever)
    stop_after: float | None = None

    def mean_interarrival(self) -> float:
        """Mean gap between frame injections for the offered load."""
        if self.offered_load_bps <= 0:
            raise ValueError("offered load must be positive")
        return self.frame_payload_bytes * 8.0 / self.offered_load_bps


class NetworkLoader:
    """Injects Poisson background traffic between two attached nodes.

    The loader owns its two node attachments (they model the paper's two
    dedicated loader nodes) and simply discards everything delivered to
    them.
    """

    def __init__(
        self,
        kernel: Kernel,
        network: Network,
        config: LoaderConfig,
        src_node: int,
        dst_node: int,
        name: str = "loader",
    ) -> None:
        if config.offered_load_bps <= 0:
            raise ValueError("offered load must be positive; omit the loader for 0")
        self.kernel = kernel
        self.network = network
        self.config = config
        self.src_node = src_node
        self.dst_node = dst_node
        self.name = name
        self.frames_injected = 0
        self.frames_delivered = 0
        self._rng = kernel.rng.get(f"{name}.arrivals")
        network.attach(src_node, self._sink)
        network.attach(dst_node, self._sink)
        self._running = False

    def _sink(self, frame: Frame) -> None:
        self.frames_delivered += 1

    def start(self, delay: float = 0.0) -> None:
        """Begin injecting after ``delay`` simulated seconds."""
        if self._running:
            raise RuntimeError(f"{self.name} already started")
        self._running = True
        self.kernel.schedule(delay + self._next_gap(), self._inject)

    def _next_gap(self) -> float:
        return float(self._rng.exponential(self.config.mean_interarrival()))

    def _inject(self) -> None:
        if (
            self.config.stop_after is not None
            and self.kernel.now >= self.config.stop_after
        ):
            self._running = False
            return
        frame = Frame(
            src=self.src_node,
            dst=self.dst_node,
            size_bytes=self.config.frame_payload_bytes,
            kind="load",
        )
        self.network.adapters[self.src_node].send(frame)
        self.frames_injected += 1
        self.kernel.schedule(self._next_gap(), self._inject)
